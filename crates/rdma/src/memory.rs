//! Device memory: a per-node arena with registration-based access control.
//!
//! Real RDMA requires memory to be registered with the NIC before it can be
//! the source or target of DMA. We model a node's DRAM as a 64-bit address
//! space managed by a first-fit free-list allocator; each allocation may be
//! *backed* (a real `Vec<u8>`, bytes actually move) or *synthetic* (no
//! backing store — used for fluid-mode experiments at the 256 GB scale where
//! only sizes and timing matter).

use std::collections::BTreeMap;

use crate::types::{Access, RKey, RdmaError, Result};

/// A handle to an allocation in a device arena.
///
/// Plain descriptor (cheap `Copy`); the arena owns the bytes. Buffers are
/// implicitly DMA-able locally (a simplification over verbs' lkeys — see
/// crate docs); *remote* access additionally requires [`Arena::register`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DmaBuf {
    /// Start address within the owning device's arena.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

impl DmaBuf {
    /// A sub-range of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn slice(&self, offset: u64, len: u64) -> DmaBuf {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "slice out of bounds"
        );
        DmaBuf {
            addr: self.addr + offset,
            len,
        }
    }
}

/// A registered memory region (the device-side record).
#[derive(Clone, Copy, Debug)]
pub struct MrEntry {
    /// Region start address.
    pub addr: u64,
    /// Region length.
    pub len: u64,
    /// Granted remote rights.
    pub access: Access,
    /// The key remote peers must present.
    pub rkey: RKey,
}

impl MrEntry {
    /// Checks that `[addr, addr+len)` lies inside the region and the region
    /// grants `needed`.
    pub fn check(&self, addr: u64, len: u64, needed: Access) -> Result<()> {
        if !self.access.allows(needed) {
            return Err(RdmaError::AccessDenied);
        }
        let end = addr
            .checked_add(len)
            .ok_or(RdmaError::OutOfBounds { addr, len })?;
        if addr < self.addr || end > self.addr + self.len {
            return Err(RdmaError::OutOfBounds { addr, len });
        }
        Ok(())
    }
}

struct Block {
    len: u64,
    /// `Some` for backed allocations, `None` for synthetic ones.
    data: Option<Vec<u8>>,
}

/// The arena: allocator + backing storage + MR table for one device.
pub struct Arena {
    capacity: u64,
    used: u64,
    /// Free extents, keyed by start address.
    free: BTreeMap<u64, u64>,
    /// Live allocations, keyed by start address.
    blocks: BTreeMap<u64, Block>,
    mrs: BTreeMap<RKey, MrEntry>,
    next_rkey: u64,
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("blocks", &self.blocks.len())
            .field("mrs", &self.mrs.len())
            .finish()
    }
}

impl Arena {
    /// Creates an arena covering addresses `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        Arena {
            capacity,
            used: 0,
            free,
            blocks: BTreeMap::new(),
            mrs: BTreeMap::new(),
            next_rkey: 0x1000,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Allocates `len` bytes of backed memory (zero-initialized).
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfMemory`] if no free extent is large enough.
    pub fn alloc(&mut self, len: u64) -> Result<DmaBuf> {
        self.alloc_inner(len, true, 1)
    }

    /// Allocates `len` bytes of backed memory whose start address is a
    /// multiple of `align`. Variable-length staging buffers fragment the
    /// first-fit free list onto arbitrary byte offsets, so callers that
    /// perform word-granularity access (the `read_u64`/`write_u64` atomics
    /// path, CAS scratch words) must ask for alignment explicitly — exactly
    /// like DMA-able atomics buffers on a real NIC.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfMemory`] if no free extent can fit an aligned copy;
    /// [`RdmaError::OutOfBounds`] if `align` is zero or not a power of two.
    pub fn alloc_aligned(&mut self, len: u64, align: u64) -> Result<DmaBuf> {
        if align == 0 || !align.is_power_of_two() {
            return Err(RdmaError::OutOfBounds { addr: align, len });
        }
        self.alloc_inner(len, true, align)
    }

    /// Allocates `len` bytes of synthetic (unbacked) memory. Reads return
    /// zeroes; writes are discarded. Timing and accounting behave exactly
    /// like backed memory.
    pub fn alloc_synthetic(&mut self, len: u64) -> Result<DmaBuf> {
        self.alloc_inner(len, false, 1)
    }

    fn alloc_inner(&mut self, len: u64, backed: bool, align: u64) -> Result<DmaBuf> {
        if len == 0 {
            return Err(RdmaError::OutOfBounds { addr: 0, len });
        }
        // First fit, at the first aligned address inside each free extent.
        let found = self.free.iter().find_map(|(&faddr, &flen)| {
            let addr = faddr.next_multiple_of(align);
            let pad = addr - faddr;
            (flen >= pad && flen - pad >= len).then_some((addr, faddr, flen))
        });
        let (addr, faddr, flen) = found.ok_or(RdmaError::OutOfMemory { requested: len })?;
        self.free.remove(&faddr);
        if addr > faddr {
            self.free.insert(faddr, addr - faddr);
        }
        let tail = faddr + flen - (addr + len);
        if tail > 0 {
            self.free.insert(addr + len, tail);
        }
        let data = if backed {
            Some(vec![
                0u8;
                usize::try_from(len).map_err(|_| {
                    RdmaError::OutOfMemory { requested: len }
                })?
            ])
        } else {
            None
        };
        self.blocks.insert(addr, Block { len, data });
        self.used += len;
        Ok(DmaBuf { addr, len })
    }

    /// Frees an allocation previously returned by an alloc call, coalescing
    /// adjacent free extents. Any MRs covering it are deregistered.
    ///
    /// # Errors
    ///
    /// [`RdmaError::InvalidHandle`] if `addr` is not an allocation start.
    pub fn free(&mut self, buf: DmaBuf) -> Result<()> {
        let block = self
            .blocks
            .remove(&buf.addr)
            .ok_or(RdmaError::InvalidHandle)?;
        debug_assert_eq!(block.len, buf.len, "free with mismatched length");
        self.used -= block.len;
        self.mrs
            .retain(|_, mr| mr.addr + mr.len <= buf.addr || mr.addr >= buf.addr + block.len);

        // Insert and coalesce with neighbours.
        let mut start = buf.addr;
        let mut len = block.len;
        if let Some((&paddr, &plen)) = self.free.range(..start).next_back() {
            if paddr + plen == start {
                self.free.remove(&paddr);
                start = paddr;
                len += plen;
            }
        }
        if let Some((&naddr, &nlen)) = self.free.range(start + len..).next() {
            if start + len == naddr {
                self.free.remove(&naddr);
                len += nlen;
            }
        }
        self.free.insert(start, len);
        Ok(())
    }

    /// Registers a memory region over `buf` with the given remote rights,
    /// returning its entry (including the generated rkey).
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] if `buf` does not lie within a single live
    /// allocation.
    pub fn register(&mut self, buf: DmaBuf, access: Access) -> Result<MrEntry> {
        self.containing_block(buf.addr, buf.len)?;
        self.next_rkey += 0x11;
        let rkey = RKey(self.next_rkey);
        let entry = MrEntry {
            addr: buf.addr,
            len: buf.len,
            access,
            rkey,
        };
        self.mrs.insert(rkey, entry);
        Ok(entry)
    }

    /// Removes a registration.
    ///
    /// # Errors
    ///
    /// [`RdmaError::InvalidHandle`] if the rkey is unknown.
    pub fn deregister(&mut self, rkey: RKey) -> Result<()> {
        self.mrs
            .remove(&rkey)
            .map(|_| ())
            .ok_or(RdmaError::InvalidHandle)
    }

    /// Replaces the remote rights on a live registration, keeping its rkey.
    ///
    /// This models the `IBV_REREG_MR_CHANGE_ACCESS` path: in-flight and
    /// future wire ops see the new rights on their next access check, which
    /// is what lets a migration source be sealed read-only without
    /// invalidating the rkey readers already hold.
    ///
    /// # Errors
    ///
    /// [`RdmaError::InvalidHandle`] if the rkey is unknown.
    pub fn set_access(&mut self, rkey: RKey, access: Access) -> Result<()> {
        self.mrs
            .get_mut(&rkey)
            .map(|mr| mr.access = access)
            .ok_or(RdmaError::InvalidHandle)
    }

    /// Looks up an MR by rkey.
    pub fn mr(&self, rkey: RKey) -> Option<MrEntry> {
        self.mrs.get(&rkey).copied()
    }

    /// Number of live registrations.
    pub fn mr_count(&self) -> usize {
        self.mrs.len()
    }

    fn containing_block(&self, addr: u64, len: u64) -> Result<(u64, &Block)> {
        let (baddr, block) = self
            .blocks
            .range(..=addr)
            .next_back()
            .ok_or(RdmaError::OutOfBounds { addr, len })?;
        let end = addr
            .checked_add(len)
            .ok_or(RdmaError::OutOfBounds { addr, len })?;
        if end > baddr + block.len {
            return Err(RdmaError::OutOfBounds { addr, len });
        }
        Ok((*baddr, block))
    }

    fn containing_block_mut(&mut self, addr: u64, len: u64) -> Result<(u64, &mut Block)> {
        let (baddr, block) = self
            .blocks
            .range_mut(..=addr)
            .next_back()
            .ok_or(RdmaError::OutOfBounds { addr, len })?;
        let end = addr
            .checked_add(len)
            .ok_or(RdmaError::OutOfBounds { addr, len })?;
        if end > *baddr + block.len {
            return Err(RdmaError::OutOfBounds { addr, len });
        }
        Ok((*baddr, block))
    }

    /// Copies bytes out of the arena. Synthetic allocations read as zeroes.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] if the range is not within one allocation.
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>> {
        let (baddr, block) = self.containing_block(addr, len)?;
        Ok(match &block.data {
            Some(data) => {
                let off = (addr - baddr) as usize;
                data[off..off + len as usize].to_vec()
            }
            None => vec![0u8; len as usize],
        })
    }

    /// Copies bytes out of the arena into a caller-owned slice — the
    /// allocation-free sibling of [`read`](Self::read) for hot paths that
    /// reuse a scratch buffer. Synthetic allocations read as zeroes.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] if the range is not within one allocation.
    pub fn read_into(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
        let (baddr, block) = self.containing_block(addr, dst.len() as u64)?;
        match &block.data {
            Some(data) => {
                let off = (addr - baddr) as usize;
                dst.copy_from_slice(&data[off..off + dst.len()]);
            }
            None => dst.fill(0),
        }
        Ok(())
    }

    /// Copies bytes into the arena. Writes to synthetic allocations are
    /// discarded (timing only).
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] if the range is not within one allocation.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<()> {
        let (baddr, block) = self.containing_block_mut(addr, bytes.len() as u64)?;
        if let Some(data) = &mut block.data {
            let off = (addr - baddr) as usize;
            data[off..off + bytes.len()].copy_from_slice(bytes);
        }
        Ok(())
    }

    /// Reads a range as a [`Payload`](crate::wire::Payload): backed
    /// allocations yield real bytes, synthetic ones a size-only payload —
    /// crucially *without* materializing huge zero buffers.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] if the range is not within one allocation.
    pub fn read_payload(&self, addr: u64, len: u64) -> Result<crate::wire::Payload> {
        let (baddr, block) = self.containing_block(addr, len)?;
        Ok(match &block.data {
            Some(data) => {
                let off = (addr - baddr) as usize;
                crate::wire::Payload::Bytes(data[off..off + len as usize].to_vec())
            }
            None => crate::wire::Payload::Synthetic(len),
        })
    }

    /// Writes a payload into the arena. Real bytes land in backed
    /// allocations; synthetic payloads (or writes into synthetic blocks)
    /// affect timing and accounting only.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] if the range is not within one allocation.
    pub fn write_payload(&mut self, addr: u64, payload: &crate::wire::Payload) -> Result<()> {
        let len = payload.len();
        let (baddr, block) = self.containing_block_mut(addr, len)?;
        if let (Some(data), crate::wire::Payload::Bytes(bytes)) = (&mut block.data, payload) {
            let off = (addr - baddr) as usize;
            data[off..off + bytes.len()].copy_from_slice(bytes);
        }
        Ok(())
    }

    /// Flips `bits` random bits inside registered, backed memory — the
    /// at-rest corruption model behind `FaultAction::CorruptRegion`. Returns
    /// the `(byte_addr, bit)` pairs actually flipped so each one can be
    /// traced. Only *remotely readable* MRs qualify — that is the memory the
    /// node donated to the store; private local registrations are not part
    /// of the corruption model. Synthetic registrations have no bytes and
    /// are skipped; `bits` draws land nowhere (and are dropped) when nothing
    /// backed is registered. MR iteration order is the `BTreeMap`'s, so the
    /// same rng state flips the same bits.
    pub fn corrupt_registered(&mut self, rng: &mut sim::DetRng, bits: u32) -> Vec<(u64, u8)> {
        let ranges: Vec<(u64, u64)> = self
            .mrs
            .values()
            .filter(|mr| {
                mr.access.allows(Access::REMOTE_READ)
                    && self
                        .containing_block(mr.addr, mr.len)
                        .map(|(_, b)| b.data.is_some())
                        .unwrap_or(false)
            })
            .map(|mr| (mr.addr, mr.len))
            .collect();
        let total_bits: u64 = ranges.iter().map(|&(_, len)| len * 8).sum();
        let mut flips = Vec::new();
        if total_bits == 0 {
            return flips;
        }
        for _ in 0..bits {
            let mut idx = rng.range_u64(0, total_bits);
            for &(addr, len) in &ranges {
                let range_bits = len * 8;
                if idx < range_bits {
                    let byte_addr = addr + idx / 8;
                    let bit = (idx % 8) as u8;
                    let mut byte = self.read(byte_addr, 1).expect("registered range readable");
                    byte[0] ^= 1 << bit;
                    self.write(byte_addr, &byte)
                        .expect("registered range writable");
                    flips.push((byte_addr, bit));
                    break;
                }
                idx -= range_bits;
            }
        }
        flips
    }

    /// Atomically reads a u64 (little-endian) at an 8-byte-aligned address.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] on bad range or misalignment.
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        if !addr.is_multiple_of(8) {
            return Err(RdmaError::OutOfBounds { addr, len: 8 });
        }
        let bytes = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Writes a u64 (little-endian) at an 8-byte-aligned address.
    ///
    /// # Errors
    ///
    /// [`RdmaError::OutOfBounds`] on bad range or misalignment.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<()> {
        if !addr.is_multiple_of(8) {
            return Err(RdmaError::OutOfBounds { addr, len: 8 });
        }
        self.write(addr, &value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip_restores_capacity() {
        let mut a = Arena::new(1024);
        let b1 = a.alloc(100).unwrap();
        let b2 = a.alloc(200).unwrap();
        assert_eq!(a.used(), 300);
        a.free(b1).unwrap();
        a.free(b2).unwrap();
        assert_eq!(a.used(), 0);
        // Full coalescing: a single 1024-byte allocation must succeed again.
        let big = a.alloc(1024).unwrap();
        assert_eq!(big.len, 1024);
    }

    #[test]
    fn alloc_fails_when_fragmented_but_not_out_of_total() {
        let mut a = Arena::new(300);
        let b1 = a.alloc(100).unwrap();
        let _b2 = a.alloc(100).unwrap();
        let _b3 = a.alloc(100).unwrap();
        a.free(b1).unwrap();
        // 100 free at front, but a 150 request cannot fit contiguously.
        assert_eq!(a.alloc(150), Err(RdmaError::OutOfMemory { requested: 150 }));
        assert!(a.alloc(100).is_ok());
    }

    #[test]
    fn read_write_round_trip() {
        let mut a = Arena::new(4096);
        let b = a.alloc(64).unwrap();
        a.write(b.addr + 8, b"hello").unwrap();
        assert_eq!(a.read(b.addr + 8, 5).unwrap(), b"hello");
        assert_eq!(a.read(b.addr, 1).unwrap(), vec![0]);
    }

    #[test]
    fn access_spanning_allocations_rejected() {
        let mut a = Arena::new(4096);
        let b1 = a.alloc(64).unwrap();
        let _b2 = a.alloc(64).unwrap();
        assert!(matches!(
            a.read(b1.addr + 32, 64),
            Err(RdmaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn synthetic_blocks_read_zero_and_ignore_writes() {
        let mut a = Arena::new(1 << 40);
        let b = a.alloc_synthetic(1 << 35).unwrap(); // 32 GiB, no real memory
        a.write(b.addr, b"data").unwrap();
        assert_eq!(a.read(b.addr, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn register_and_check_access() {
        let mut a = Arena::new(4096);
        let b = a.alloc(128).unwrap();
        let mr = a.register(b, Access::REMOTE_READ).unwrap();
        assert!(mr.check(b.addr, 128, Access::REMOTE_READ).is_ok());
        assert_eq!(
            mr.check(b.addr, 128, Access::REMOTE_WRITE),
            Err(RdmaError::AccessDenied)
        );
        assert!(matches!(
            mr.check(b.addr + 100, 64, Access::REMOTE_READ),
            Err(RdmaError::OutOfBounds { .. })
        ));
        assert_eq!(a.mr(mr.rkey).unwrap().len, 128);
    }

    #[test]
    fn free_drops_covering_mrs() {
        let mut a = Arena::new(4096);
        let b = a.alloc(128).unwrap();
        let mr = a.register(b, Access::REMOTE_ALL).unwrap();
        a.free(b).unwrap();
        assert!(a.mr(mr.rkey).is_none());
        assert_eq!(a.mr_count(), 0);
    }

    #[test]
    fn deregister_unknown_rkey_errors() {
        let mut a = Arena::new(64);
        assert_eq!(a.deregister(RKey(99)), Err(RdmaError::InvalidHandle));
    }

    #[test]
    fn double_free_errors() {
        let mut a = Arena::new(64);
        let b = a.alloc(32).unwrap();
        a.free(b).unwrap();
        assert_eq!(a.free(b), Err(RdmaError::InvalidHandle));
    }

    #[test]
    fn alloc_aligned_survives_odd_fragmentation() {
        let mut a = Arena::new(4096);
        // An odd-length staging alloc leaves the free list on a byte offset.
        let _odd = a.alloc(37).unwrap();
        let word = a.alloc_aligned(16, 8).unwrap();
        assert_eq!(word.addr % 8, 0, "aligned alloc landed at {}", word.addr);
        // The word buffer is immediately usable by the atomics helpers.
        a.write_u64(word.addr, 42).unwrap();
        assert_eq!(a.read_u64(word.addr).unwrap(), 42);
        // Freeing both still coalesces back to a single extent.
        a.free(word).unwrap();
        a.free(_odd).unwrap();
        assert!(a.alloc(4096).is_ok());
        // Bad alignment is rejected, not silently honoured.
        assert!(matches!(
            a.alloc_aligned(8, 3),
            Err(RdmaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn u64_helpers_enforce_alignment() {
        let mut a = Arena::new(64);
        let b = a.alloc(16).unwrap();
        a.write_u64(b.addr, 0xDEAD_BEEF).unwrap();
        assert_eq!(a.read_u64(b.addr).unwrap(), 0xDEAD_BEEF);
        assert!(a.read_u64(b.addr + 1).is_err());
    }

    #[test]
    fn corrupt_registered_flips_only_backed_registered_bits() {
        let mut a = Arena::new(1 << 20);
        let plain = a.alloc(64).unwrap(); // allocated but never registered
        let backed = a.alloc(64).unwrap();
        let synth = a.alloc_synthetic(64).unwrap();
        a.register(backed, Access::REMOTE_ALL).unwrap();
        a.register(synth, Access::REMOTE_ALL).unwrap();
        let mut rng = sim::DetRng::new(7);
        let flips = a.corrupt_registered(&mut rng, 8);
        assert_eq!(flips.len(), 8, "every draw lands in the backed MR");
        for &(addr, bit) in &flips {
            assert!(
                (backed.addr..backed.addr + backed.len).contains(&addr),
                "flip at {addr} outside the backed registration"
            );
            assert!(bit < 8);
        }
        // The backed registration really changed; unregistered memory didn't.
        assert_ne!(a.read(backed.addr, 64).unwrap(), vec![0u8; 64]);
        assert_eq!(a.read(plain.addr, 64).unwrap(), vec![0u8; 64]);

        // Same rng seed ⇒ same flips.
        let mut b = Arena::new(1 << 20);
        let _plain = b.alloc(64).unwrap();
        let backed2 = b.alloc(64).unwrap();
        let synth2 = b.alloc_synthetic(64).unwrap();
        b.register(backed2, Access::REMOTE_ALL).unwrap();
        b.register(synth2, Access::REMOTE_ALL).unwrap();
        let mut rng2 = sim::DetRng::new(7);
        assert_eq!(b.corrupt_registered(&mut rng2, 8), flips);
    }

    #[test]
    fn corrupt_registered_with_nothing_backed_is_a_noop() {
        let mut a = Arena::new(1 << 20);
        let synth = a.alloc_synthetic(1024).unwrap();
        a.register(synth, Access::REMOTE_ALL).unwrap();
        let mut rng = sim::DetRng::new(1);
        assert!(a.corrupt_registered(&mut rng, 16).is_empty());
    }

    #[test]
    fn slice_bounds_checked() {
        let b = DmaBuf { addr: 10, len: 20 };
        let s = b.slice(5, 10);
        assert_eq!((s.addr, s.len), (15, 10));
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_overrun_panics() {
        DmaBuf { addr: 0, len: 8 }.slice(4, 8);
    }
}
