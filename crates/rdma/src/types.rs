//! Identifier newtypes, access flags, and error types for the verbs layer.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Queue pair number, unique per device.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Qpn(pub u64);

impl fmt::Display for Qpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Remote key authorizing access to a memory region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RKey(pub u64);

impl fmt::Display for RKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey{:#x}", self.0)
    }
}

/// Access rights attached to a memory region at registration time.
///
/// A tiny hand-rolled bitset (the workspace avoids the `bitflags` dependency;
/// there are only three flags).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct Access(u8);

impl Access {
    /// No remote rights: local-only region.
    pub const LOCAL_ONLY: Access = Access(0);
    /// Remote RDMA READ allowed.
    pub const REMOTE_READ: Access = Access(1);
    /// Remote RDMA WRITE allowed.
    pub const REMOTE_WRITE: Access = Access(2);
    /// Remote atomics (CAS / fetch-add) allowed.
    pub const REMOTE_ATOMIC: Access = Access(4);
    /// All remote rights.
    pub const REMOTE_ALL: Access = Access(7);

    /// Whether all flags in `other` are present in `self`.
    pub fn allows(self, other: Access) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        Access(self.0 | rhs.0)
    }
}

impl BitOrAssign for Access {
    fn bitor_assign(&mut self, rhs: Access) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.allows(Access::REMOTE_READ) {
            parts.push("R");
        }
        if self.allows(Access::REMOTE_WRITE) {
            parts.push("W");
        }
        if self.allows(Access::REMOTE_ATOMIC) {
            parts.push("A");
        }
        if parts.is_empty() {
            parts.push("local");
        }
        write!(f, "{}", parts.join("+"))
    }
}

/// Errors surfaced by verbs-layer calls.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RdmaError {
    /// The device arena has no block large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// An address range fell outside its allocation or region.
    OutOfBounds {
        /// Offending start address.
        addr: u64,
        /// Length of the access.
        len: u64,
    },
    /// An rkey was unknown or its region lacked the required rights.
    AccessDenied,
    /// No listener at the requested service id, or the peer rejected us.
    ConnectionRefused,
    /// The peer did not answer within the timeout (node down / partition).
    Timeout,
    /// The queue pair is in the error state; the work request was flushed.
    QpError,
    /// Free/dereg of an address that is not an allocation start.
    InvalidHandle,
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::OutOfMemory { requested } => {
                write!(f, "device arena exhausted (requested {requested} bytes)")
            }
            RdmaError::OutOfBounds { addr, len } => {
                write!(f, "access [{addr}, +{len}) outside allocation or region")
            }
            RdmaError::AccessDenied => write!(f, "unknown rkey or insufficient access rights"),
            RdmaError::ConnectionRefused => write!(f, "connection refused"),
            RdmaError::Timeout => write!(f, "operation timed out"),
            RdmaError::QpError => write!(f, "queue pair is in the error state"),
            RdmaError::InvalidHandle => write!(f, "invalid buffer or region handle"),
        }
    }
}

impl std::error::Error for RdmaError {}

/// Convenient result alias for verbs-layer calls.
pub type Result<T> = std::result::Result<T, RdmaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flags_compose() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.allows(Access::REMOTE_READ));
        assert!(rw.allows(Access::REMOTE_WRITE));
        assert!(!rw.allows(Access::REMOTE_ATOMIC));
        assert!(Access::REMOTE_ALL.allows(rw));
        assert!(rw.allows(Access::LOCAL_ONLY));
    }

    #[test]
    fn access_display_lists_rights() {
        assert_eq!(Access::LOCAL_ONLY.to_string(), "local");
        assert_eq!(
            (Access::REMOTE_READ | Access::REMOTE_ATOMIC).to_string(),
            "R+A"
        );
    }

    #[test]
    fn errors_format() {
        let e = RdmaError::OutOfBounds { addr: 16, len: 32 };
        assert!(e.to_string().contains("[16, +32)"));
    }
}
