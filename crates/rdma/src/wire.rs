//! On-the-wire message formats for the simulated RDMA protocol.
//!
//! These types play the role of InfiniBand transport packets. Wire sizes are
//! charged to the fabric explicitly: a fixed header per message (BTH + CRCs,
//! rounded to 42 bytes) plus the payload length, so bandwidth figures include
//! realistic protocol overhead.

use crate::types::{Qpn, RKey};

/// Fixed per-message header cost in bytes.
pub const HEADER_BYTES: u64 = 42;

/// A message payload that either carries real bytes or merely represents
/// `len` bytes (fluid mode — timing and accounting without data movement).
#[derive(Clone, Debug)]
pub enum Payload {
    /// Real bytes; they are copied into the destination arena on arrival.
    Bytes(Vec<u8>),
    /// Synthetic payload of the given length.
    Synthetic(u64),
}

impl Payload {
    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Synthetic(n) => *n,
        }
    }

    /// True for an empty payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Status carried by acknowledgements and responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireStatus {
    /// The operation executed.
    Ok,
    /// rkey unknown or rights insufficient.
    AccessDenied,
    /// Address range outside the registered region.
    OutOfBounds,
    /// SEND payload larger than the posted receive buffer.
    RecvOverflow,
}

/// Atomic operations executed by the responder NIC.
#[derive(Clone, Copy, Debug)]
pub enum AtomicOp {
    /// Compare-and-swap on a u64: if `*addr == expect`, store `swap`;
    /// returns the prior value either way.
    CompareSwap {
        /// Expected current value.
        expect: u64,
        /// Replacement value.
        swap: u64,
    },
    /// Fetch-and-add on a u64; returns the prior value.
    FetchAdd {
        /// Addend.
        add: u64,
    },
}

/// Connection-management messages (the `rdma_cm` analogue).
#[derive(Debug)]
pub enum CmMsg {
    /// Client asks to connect to a service.
    ConnReq {
        /// Correlates the eventual accept/reject with the connect call.
        conn_id: u64,
        /// Service id the client is dialing.
        service: u16,
        /// The client's queue pair number.
        client_qpn: Qpn,
    },
    /// Server accepted; carries its queue pair number.
    ConnAccept {
        /// Echoed correlation id.
        conn_id: u64,
        /// The server's queue pair number.
        server_qpn: Qpn,
    },
    /// No listener (or listener dropped).
    ConnReject {
        /// Echoed correlation id.
        conn_id: u64,
    },
}

/// Transport messages addressed to a specific queue pair.
#[derive(Debug)]
pub enum QpMsg {
    /// Two-sided SEND carrying a payload.
    Send {
        /// Requester-side sequence id.
        req_id: u64,
        /// Data.
        payload: Payload,
        /// Optional 32-bit immediate.
        imm: Option<u32>,
    },
    /// Acknowledgement completing a SEND.
    SendAck {
        /// Echoed sequence id.
        req_id: u64,
        /// Outcome.
        status: WireStatus,
    },
    /// One-sided READ request.
    ReadReq {
        /// Requester-side sequence id.
        req_id: u64,
        /// Remote start address.
        raddr: u64,
        /// Authorizing key.
        rkey: RKey,
        /// Bytes to read.
        len: u64,
    },
    /// READ response carrying the data.
    ReadResp {
        /// Echoed sequence id.
        req_id: u64,
        /// Outcome.
        status: WireStatus,
        /// The data (empty on error).
        payload: Payload,
    },
    /// One-sided WRITE carrying the data.
    WriteReq {
        /// Requester-side sequence id.
        req_id: u64,
        /// Remote start address.
        raddr: u64,
        /// Authorizing key.
        rkey: RKey,
        /// Data.
        payload: Payload,
    },
    /// Acknowledgement completing a WRITE.
    WriteAck {
        /// Echoed sequence id.
        req_id: u64,
        /// Outcome.
        status: WireStatus,
    },
    /// One-sided atomic request.
    AtomicReq {
        /// Requester-side sequence id.
        req_id: u64,
        /// Remote address (8-byte aligned).
        raddr: u64,
        /// Authorizing key.
        rkey: RKey,
        /// The operation.
        op: AtomicOp,
    },
    /// Atomic response with the prior value.
    AtomicResp {
        /// Echoed sequence id.
        req_id: u64,
        /// Outcome.
        status: WireStatus,
        /// Value at the address before the operation.
        old: u64,
    },
}

/// Everything the RDMA layer puts on the fabric.
#[derive(Debug)]
pub enum NetMsg {
    /// Connection management.
    Cm(CmMsg),
    /// Queue-pair transport, addressed to the destination QP.
    Qp {
        /// Destination queue pair on the receiving node.
        dst: Qpn,
        /// The transport message.
        msg: QpMsg,
    },
}

impl NetMsg {
    /// Bytes this message occupies on the wire (header + payload).
    pub fn wire_bytes(&self) -> u64 {
        let body = match self {
            NetMsg::Cm(_) => 24,
            NetMsg::Qp { msg, .. } => match msg {
                QpMsg::Send { payload, .. } => payload.len(),
                QpMsg::SendAck { .. } => 0,
                QpMsg::ReadReq { .. } => 16,
                QpMsg::ReadResp { payload, .. } => payload.len(),
                QpMsg::WriteReq { payload, .. } => 16 + payload.len(),
                QpMsg::WriteAck { .. } => 0,
                QpMsg::AtomicReq { .. } => 32,
                QpMsg::AtomicResp { .. } => 8,
            },
        };
        HEADER_BYTES + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_len() {
        assert_eq!(Payload::Bytes(vec![1, 2, 3]).len(), 3);
        assert_eq!(Payload::Synthetic(1 << 40).len(), 1 << 40);
        assert!(Payload::Bytes(Vec::new()).is_empty());
    }

    #[test]
    fn wire_bytes_include_header() {
        let msg = NetMsg::Qp {
            dst: Qpn(1),
            msg: QpMsg::WriteReq {
                req_id: 0,
                raddr: 0,
                rkey: RKey(1),
                payload: Payload::Synthetic(1000),
            },
        };
        assert_eq!(msg.wire_bytes(), HEADER_BYTES + 16 + 1000);
        let ack = NetMsg::Qp {
            dst: Qpn(1),
            msg: QpMsg::WriteAck {
                req_id: 0,
                status: WireStatus::Ok,
            },
        };
        assert_eq!(ack.wire_bytes(), HEADER_BYTES);
    }
}
