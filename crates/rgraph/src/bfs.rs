//! Distributed BFS using one-sided mailboxes.
//!
//! Unlike the pull-style kernels, BFS is frontier-driven: each superstep a
//! worker pushes the ids of newly reachable vertices directly into their
//! owners' mailbox regions with one-sided writes — message passing that
//! never wakes a remote CPU.

use std::time::Duration;

use fabric::NodeId;
use rdma::RdmaDevice;
use rstore::{AllocOptions, RStoreClient, Result};
use sim::join_all;
use sim::sync::Barrier;

use crate::config::CostModel;
use crate::partition::VertexPartition;
use crate::store::GraphStore;
use crate::worker::{ConvBoard, CsrSlice, Mailboxes};

/// BFS parameters.
#[derive(Clone, Copy, Debug)]
pub struct BfsConfig {
    /// Per-mailbox capacity in vertex ids. Must bound the unique vertices a
    /// single worker can discover for one peer in a superstep.
    pub mailbox_cap: u64,
    /// Compute-cost model.
    pub cost: CostModel,
    /// Distinguishes concurrent runs in the namespace.
    pub job_nonce: u64,
}

impl Default for BfsConfig {
    fn default() -> Self {
        BfsConfig {
            mailbox_cap: 64 * 1024,
            cost: CostModel::default(),
            job_nonce: 0,
        }
    }
}

/// Result of a BFS run.
#[derive(Clone, Debug)]
pub struct BfsOutcome {
    /// BFS level per vertex (`u64::MAX` = unreachable).
    pub levels: Vec<u64>,
    /// Supersteps executed (= eccentricity of the source + 1).
    pub supersteps: usize,
    /// Total virtual time.
    pub total: Duration,
}

/// Runs distributed BFS from `src`, one worker per device.
///
/// # Errors
///
/// Store or IO failures from any worker.
///
/// # Panics
///
/// Panics if `devs` is empty.
pub async fn run(
    devs: &[RdmaDevice],
    master: NodeId,
    graph: &str,
    src: u64,
    cfg: BfsConfig,
) -> Result<BfsOutcome> {
    assert!(!devs.is_empty(), "need at least one worker device");
    let k = devs.len() as u64;
    let sim = devs[0].sim().clone();
    let barrier = Barrier::new(devs.len());
    let t0 = sim.now();

    // Job-scoped setup before spawning: a failure here must not strand
    // workers at a barrier.
    {
        let setup = RStoreClient::connect(&devs[0], master).await?;
        let prefix = format!("{graph}/bfs{src}_{}", cfg.job_nonce);
        Mailboxes::create(&setup, &prefix, k, cfg.mailbox_cap, AllocOptions::default()).await?;
        ConvBoard::create(
            &setup,
            &format!("{prefix}/conv"),
            k,
            AllocOptions::default(),
        )
        .await?;
    }

    let mut handles = Vec::with_capacity(devs.len());
    for (i, dev) in devs.iter().enumerate() {
        let dev = dev.clone();
        let barrier = barrier.clone();
        let graph = graph.to_owned();
        handles.push(sim.spawn(async move {
            worker(i as u64, k, dev, master, graph, src, cfg, barrier).await
        }));
    }
    let outs = join_all(handles).await;

    let mut n_total = 0u64;
    for out in &outs {
        match out {
            Ok((start, levels, _)) => n_total = n_total.max(start + levels.len() as u64),
            Err(e) => return Err(e.clone()),
        }
    }
    let mut levels = vec![u64::MAX; n_total as usize];
    let mut supersteps = 0;
    for out in outs {
        let (start, vals, steps) = out.expect("errors returned above");
        levels[start as usize..start as usize + vals.len()].copy_from_slice(&vals);
        supersteps = steps;
    }
    Ok(BfsOutcome {
        levels,
        supersteps,
        total: sim.now() - t0,
    })
}

#[allow(clippy::too_many_arguments)]
async fn worker(
    me: u64,
    k: u64,
    dev: RdmaDevice,
    master: NodeId,
    graph: String,
    src: u64,
    cfg: BfsConfig,
    barrier: Barrier,
) -> Result<(u64, Vec<u64>, usize)> {
    let sim = dev.sim().clone();
    let client = RStoreClient::connect(&dev, master).await?;
    let store = GraphStore::open(&client, &graph).await?;
    let part = VertexPartition::new(store.n, k);
    let (s, e) = part.range(me);
    let count = (e - s) as usize;

    let out_slice = CsrSlice::load(&store, &client, "out", s, e).await?;

    let prefix = format!("{graph}/bfs{src}_{}", cfg.job_nonce);
    let mbox = Mailboxes::open(&client, &prefix, k, me).await?;
    let board = ConvBoard::open(&client, &format!("{prefix}/conv"), k).await?;

    let mut levels = vec![u64::MAX; count];
    let mut frontier: Vec<u64> = Vec::new();
    if (s..e).contains(&src) {
        levels[(src - s) as usize] = 0;
        frontier.push(src);
    }

    let mut depth = 0u64;
    let mut steps = 0usize;
    loop {
        depth += 1;
        steps += 1;

        // Push phase: every out-neighbour of the frontier, deduplicated,
        // routed to its owner's mailbox.
        let mut targets: Vec<u64> = frontier
            .iter()
            .flat_map(|&v| out_slice.neighbors(v).iter().copied())
            .collect();
        let edges_touched = targets.len() as u64;
        targets.sort_unstable();
        targets.dedup();
        let outboxes = Mailboxes::route(&part, targets);
        sim.sleep(cfg.cost.superstep(edges_touched, frontier.len() as u64))
            .await;
        mbox.send_all(&outboxes).await?;
        barrier.wait().await;

        // Pull phase: adopt newly discovered owned vertices.
        let mut discovered = 0u64;
        frontier.clear();
        for payload in mbox.recv_all().await? {
            for v in payload {
                let i = (v - s) as usize;
                if levels[i] == u64::MAX {
                    levels[i] = depth;
                    frontier.push(v);
                    discovered += 1;
                }
            }
        }
        board.post(me, discovered).await?;
        barrier.wait().await;
        let total = board.total().await?;
        barrier.wait().await;
        if total == 0 {
            break;
        }
    }

    Ok((s, levels, steps))
}
