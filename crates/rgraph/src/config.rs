//! Compute-cost model for graph workers.

use std::time::Duration;

/// Per-operation CPU costs charged (as virtual time) by graph workers.
///
/// These stand in for the arithmetic the real system would do; the defaults
/// are in the range measured for in-memory PageRank kernels of the era
/// (a few ns per edge on a 2.5 GHz core).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost per edge scanned in a superstep.
    pub per_edge: Duration,
    /// Cost per owned vertex per superstep.
    pub per_vertex: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_edge: Duration::from_nanos(4),
            per_vertex: Duration::from_nanos(12),
        }
    }
}

impl CostModel {
    /// Total compute time for a superstep touching `edges` edges and
    /// `vertices` vertices.
    pub fn superstep(&self, edges: u64, vertices: u64) -> Duration {
        Duration::from_nanos(
            self.per_edge.as_nanos() as u64 * edges + self.per_vertex.as_nanos() as u64 * vertices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_cost_scales() {
        let c = CostModel::default();
        assert_eq!(
            c.superstep(1000, 100),
            Duration::from_nanos(4 * 1000 + 12 * 100)
        );
        assert!(c.superstep(0, 0).is_zero());
    }
}
