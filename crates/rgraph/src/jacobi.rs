//! Shared machinery for Jacobi-style fixpoint algorithms (WCC, SSSP):
//! per-superstep page gathers of a u64 value vector, local relaxation, and
//! convergence via the shared scoreboard.

use std::time::Duration;

use fabric::NodeId;
use rdma::RdmaDevice;
use rstore::{RStoreClient, Result};
use sim::join_all;
use sim::sync::Barrier;

use crate::config::CostModel;
use crate::partition::VertexPartition;
use crate::reference::edge_weight;
use crate::store::{u64s_to_bytes, GraphStore};
use crate::worker::{ConvBoard, CsrSlice, PageGather};

/// Which fixpoint to run.
#[derive(Clone, Copy, Debug)]
pub(crate) enum JacobiKind {
    /// Min-label propagation over both edge directions.
    Wcc,
    /// Single-source shortest paths over in-edges with [`edge_weight`].
    Sssp {
        /// Source vertex.
        src: u64,
    },
}

impl JacobiKind {
    fn init(&self, v: u64) -> u64 {
        match self {
            JacobiKind::Wcc => v,
            JacobiKind::Sssp { src } => {
                if v == *src {
                    0
                } else {
                    u64::MAX
                }
            }
        }
    }

    fn tag(&self) -> String {
        match self {
            JacobiKind::Wcc => "wcc".into(),
            JacobiKind::Sssp { src } => format!("sssp{src}"),
        }
    }
}

/// Parameters shared by WCC and SSSP runs.
#[derive(Clone, Copy, Debug)]
pub struct JacobiConfig {
    /// Page size for remote value gathers.
    pub page_bytes: u64,
    /// Compute-cost model.
    pub cost: CostModel,
    /// Safety cap on supersteps (0 = no cap).
    pub max_supersteps: usize,
    /// Distinguishes concurrent runs in the namespace.
    pub job_nonce: u64,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            page_bytes: 4096,
            cost: CostModel::default(),
            max_supersteps: 0,
            job_nonce: 0,
        }
    }
}

/// Result of a fixpoint run.
#[derive(Clone, Debug)]
pub struct JacobiOutcome {
    /// Final per-vertex values (labels or distances).
    pub values: Vec<u64>,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total virtual time.
    pub total: Duration,
}

pub(crate) async fn run(
    devs: &[RdmaDevice],
    master: NodeId,
    graph: &str,
    kind: JacobiKind,
    cfg: JacobiConfig,
) -> Result<JacobiOutcome> {
    assert!(!devs.is_empty(), "need at least one worker device");
    let k = devs.len() as u64;
    let sim = devs[0].sim().clone();
    let barrier = Barrier::new(devs.len());
    let t0 = sim.now();

    // Job-scoped setup before spawning: a failure here must not strand
    // workers at a barrier.
    {
        let setup = rstore::RStoreClient::connect(&devs[0], master).await?;
        let board_name = format!("{graph}/{}/conv{}", kind.tag(), cfg.job_nonce);
        ConvBoard::create(&setup, &board_name, k, rstore::AllocOptions::default()).await?;
    }

    let mut handles = Vec::with_capacity(devs.len());
    for (i, dev) in devs.iter().enumerate() {
        let dev = dev.clone();
        let barrier = barrier.clone();
        let graph = graph.to_owned();
        handles.push(sim.spawn(async move {
            worker(i as u64, k, dev, master, graph, kind, cfg, barrier).await
        }));
    }
    let outs = join_all(handles).await;

    let mut n_total = 0u64;
    for out in &outs {
        match out {
            Ok((start, vals, _steps)) => n_total = n_total.max(start + vals.len() as u64),
            Err(e) => return Err(e.clone()),
        }
    }
    let mut values = vec![0u64; n_total as usize];
    let mut supersteps = 0;
    for out in outs {
        let (start, vals, steps) = out.expect("errors returned above");
        values[start as usize..start as usize + vals.len()].copy_from_slice(&vals);
        supersteps = steps;
    }
    Ok(JacobiOutcome {
        values,
        supersteps,
        total: sim.now() - t0,
    })
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
async fn worker(
    me: u64,
    k: u64,
    dev: RdmaDevice,
    master: NodeId,
    graph: String,
    kind: JacobiKind,
    cfg: JacobiConfig,
    barrier: Barrier,
) -> Result<(u64, Vec<u64>, usize)> {
    let sim = dev.sim().clone();
    // ---- setup ---------------------------------------------------------------
    let client = RStoreClient::connect(&dev, master).await?;
    let store = GraphStore::open(&client, &graph).await?;
    let part = VertexPartition::new(store.n, k);
    let (s, e) = part.range(me);
    let count = (e - s) as usize;

    let in_slice = CsrSlice::load(&store, &client, "in", s, e).await?;
    let out_slice = match kind {
        JacobiKind::Wcc => Some(CsrSlice::load(&store, &client, "out", s, e).await?),
        JacobiKind::Sssp { .. } => None,
    };

    let board_name = format!("{graph}/{}/conv{}", kind.tag(), cfg.job_nonce);
    let board = ConvBoard::open(&client, &board_name, k).await?;

    let val_a = store.map(&client, "val_a").await?;
    let val_b = store.map(&client, "val_b").await?;

    let mut values: Vec<u64> = (0..count).map(|i| kind.init(s + i as u64)).collect();
    val_a.write(s * 8, &u64s_to_bytes(&values)).await?;
    barrier.wait().await;

    let gather_ids = || {
        in_slice
            .adj
            .iter()
            .copied()
            .chain(out_slice.iter().flat_map(|o| o.adj.iter().copied()))
    };
    let mut gather_a = PageGather::plan(val_a.clone(), gather_ids(), cfg.page_bytes)?;
    let mut gather_b = PageGather::plan(val_b.clone(), gather_ids(), cfg.page_bytes)?;
    let edges = in_slice.edge_count() + out_slice.as_ref().map_or(0, |o| o.edge_count());

    // ---- supersteps -------------------------------------------------------------
    let mut step = 0usize;
    loop {
        let (gather, out_region) = if step.is_multiple_of(2) {
            (&mut gather_a, &val_b)
        } else {
            (&mut gather_b, &val_a)
        };
        gather.fetch().await?;

        let mut changes = 0u64;
        for i in 0..count {
            let v = s + i as u64;
            let mut best = values[i];
            match kind {
                JacobiKind::Wcc => {
                    for &u in in_slice.neighbors(v) {
                        best = best.min(gather.get(u));
                    }
                    if let Some(out) = &out_slice {
                        for &u in out.neighbors(v) {
                            best = best.min(gather.get(u));
                        }
                    }
                }
                JacobiKind::Sssp { .. } => {
                    for &u in in_slice.neighbors(v) {
                        let du = gather.get(u);
                        if du != u64::MAX {
                            best = best.min(du + edge_weight(u, v));
                        }
                    }
                }
            }
            if best < values[i] {
                values[i] = best;
                changes += 1;
            }
        }
        sim.sleep(cfg.cost.superstep(edges, count as u64)).await;
        out_region.write(s * 8, &u64s_to_bytes(&values)).await?;
        board.post(me, changes).await?;
        barrier.wait().await;
        step += 1;

        let total_changes = board.total().await?;
        barrier.wait().await; // don't let anyone overwrite the board early
        if total_changes == 0 || (cfg.max_supersteps > 0 && step >= cfg.max_supersteps) {
            break;
        }
    }

    Ok((s, values, step))
}
