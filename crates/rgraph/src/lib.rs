//! A distributed graph-processing framework built on RStore's memory-like
//! API — the first of the paper's two showcase applications.
//!
//! The graph (CSR arrays plus a double-buffered per-vertex value vector)
//! lives in named RStore regions striped across the cluster. One worker per
//! machine owns a contiguous vertex range. All coordination and data access
//! is one-sided:
//!
//! * **PageRank / WCC / SSSP** pull neighbour values each superstep with
//!   batched page-granular RDMA reads ([`worker::PageGather`]).
//! * **BFS** pushes frontier discoveries straight into the owners' mailbox
//!   regions ([`worker::Mailboxes`]) — message passing without receiver CPU.
//! * Termination is decided through a shared scoreboard region
//!   ([`worker::ConvBoard`]), not a coordinator.
//!
//! Single-node [`mod@reference`] implementations verify every kernel.
//!
//! # Example
//!
//! ```rust
//! use rstore::{Cluster, ClusterConfig, AllocOptions};
//! use rgraph::{GraphStore, pagerank, reference};
//! use workload::uniform_graph;
//!
//! # fn main() -> rstore::Result<()> {
//! let cluster = Cluster::boot(ClusterConfig {
//!     clients: 2,
//!     ..ClusterConfig::with_servers(3)
//! })?;
//! let sim = cluster.sim.clone();
//! let g = uniform_graph(200, 1000, 42);
//! let expect = reference::pagerank(&g, 5, 0.85);
//! let ranks = sim.block_on(async move {
//!     let loader = cluster.client(0).await.unwrap();
//!     GraphStore::publish(&loader, "g", &g, AllocOptions::default())
//!         .await
//!         .unwrap();
//!     let cfg = rgraph::PageRankConfig { iters: 5, ..Default::default() };
//!     pagerank::run(&cluster.client_devs, cluster.master_node(), "g", cfg)
//!         .await
//!         .unwrap()
//!         .ranks
//! });
//! for (a, b) in ranks.iter().zip(&expect) {
//!     assert!((a - b).abs() < 1e-12);
//! }
//! # Ok(())
//! # }
//! ```

pub mod bfs;
pub mod config;
mod jacobi;
pub mod pagerank;
pub mod partition;
pub mod reference;
pub mod sssp;
pub mod store;
pub mod wcc;
pub mod worker;

pub use bfs::{BfsConfig, BfsOutcome};
pub use config::CostModel;
pub use jacobi::{JacobiConfig, JacobiOutcome};
pub use pagerank::{PageRankConfig, PageRankOutcome};
pub use partition::VertexPartition;
pub use store::GraphStore;

#[cfg(test)]
mod tests {
    use super::*;
    use rstore::{AllocOptions, Cluster, ClusterConfig};
    use workload::{rmat_graph, uniform_graph, CsrGraph};

    fn cluster(servers: usize, clients: usize) -> Cluster {
        Cluster::boot(ClusterConfig {
            clients,
            ..ClusterConfig::with_servers(servers)
        })
        .expect("boot")
    }

    fn publish(cluster: &Cluster, name: &str, g: &CsrGraph) {
        let sim = cluster.sim.clone();
        let dev = cluster.client_devs[0].clone();
        let master = cluster.master_node();
        let g = g.clone();
        let name = name.to_owned();
        sim.block_on(async move {
            let loader = rstore::RStoreClient::connect(&dev, master).await.unwrap();
            let opts = AllocOptions {
                stripe_size: 64 * 1024,
                ..AllocOptions::default()
            };
            GraphStore::publish(&loader, &name, &g, opts).await.unwrap();
        });
    }

    #[test]
    fn distributed_pagerank_matches_reference() {
        let cl = cluster(3, 4);
        let g = uniform_graph(500, 3000, 7);
        publish(&cl, "pg", &g);
        let expect = reference::pagerank(&g, 8, 0.85);
        let sim = cl.sim.clone();
        let outcome = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                let cfg = PageRankConfig {
                    iters: 8,
                    ..PageRankConfig::default()
                };
                pagerank::run(&devs, master, "pg", cfg).await.unwrap()
            }
        });
        assert_eq!(outcome.ranks.len(), 500);
        for (v, (a, b)) in outcome.ranks.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-12, "rank mismatch at {v}: {a} vs {b}");
        }
        assert_eq!(outcome.superstep_times.len(), 8);
        assert!(outcome.total > outcome.superstep_mean());
    }

    #[test]
    fn pagerank_on_skewed_rmat_graph() {
        let cl = cluster(4, 3);
        let g = rmat_graph(9, 4096, 3);
        publish(&cl, "rmat", &g);
        let expect = reference::pagerank(&g, 5, 0.85);
        let sim = cl.sim.clone();
        let ranks = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                let cfg = PageRankConfig {
                    iters: 5,
                    ..PageRankConfig::default()
                };
                pagerank::run(&devs, master, "rmat", cfg)
                    .await
                    .unwrap()
                    .ranks
            }
        });
        for (a, b) in ranks.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn distributed_bfs_matches_reference() {
        let cl = cluster(3, 3);
        let g = uniform_graph(400, 2400, 9);
        publish(&cl, "bg", &g);
        let expect = reference::bfs(&g, 0);
        let sim = cl.sim.clone();
        let outcome = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                bfs::run(&devs, master, "bg", 0, BfsConfig::default())
                    .await
                    .unwrap()
            }
        });
        assert_eq!(outcome.levels, expect);
        assert!(outcome.supersteps > 0);
    }

    #[test]
    fn distributed_wcc_matches_reference() {
        let cl = cluster(3, 3);
        // Sparse graph: several components.
        let g = uniform_graph(300, 400, 4);
        publish(&cl, "wg", &g);
        let expect = reference::wcc(&g);
        let sim = cl.sim.clone();
        let outcome = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                wcc::run(&devs, master, "wg", JacobiConfig::default())
                    .await
                    .unwrap()
            }
        });
        assert_eq!(outcome.values, expect);
    }

    #[test]
    fn distributed_sssp_matches_reference() {
        let cl = cluster(3, 3);
        let g = uniform_graph(300, 1800, 13);
        publish(&cl, "sg", &g);
        let expect = reference::sssp(&g, 5);
        let sim = cl.sim.clone();
        let outcome = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                sssp::run(&devs, master, "sg", 5, JacobiConfig::default())
                    .await
                    .unwrap()
            }
        });
        assert_eq!(outcome.values, expect);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let cl = cluster(2, 1);
        let g = uniform_graph(100, 500, 21);
        publish(&cl, "solo", &g);
        let expect = reference::pagerank(&g, 4, 0.85);
        let sim = cl.sim.clone();
        let ranks = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                let cfg = PageRankConfig {
                    iters: 4,
                    ..PageRankConfig::default()
                };
                pagerank::run(&devs, master, "solo", cfg)
                    .await
                    .unwrap()
                    .ranks
            }
        });
        for (a, b) in ranks.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn more_workers_than_vertices_is_fine() {
        let cl = cluster(2, 5);
        let g = uniform_graph(3, 6, 2);
        publish(&cl, "tiny", &g);
        let expect = reference::bfs(&g, 1);
        let sim = cl.sim.clone();
        let levels = sim.block_on({
            let devs = cl.client_devs.clone();
            let master = cl.master_node();
            async move {
                bfs::run(&devs, master, "tiny", 1, BfsConfig::default())
                    .await
                    .unwrap()
                    .levels
            }
        });
        assert_eq!(levels, expect);
    }

    #[test]
    fn more_workers_speed_up_supersteps() {
        // Scaling sanity: the same PageRank with more workers should have
        // shorter supersteps (more parallel IO + compute).
        let g = rmat_graph(11, 16 * 1024, 5);
        let times: Vec<f64> = [2usize, 8]
            .iter()
            .map(|&workers| {
                let cl = cluster(4, workers);
                publish(&cl, "scale", &g);
                let sim = cl.sim.clone();
                let outcome = sim.block_on({
                    let devs = cl.client_devs.clone();
                    let master = cl.master_node();
                    async move {
                        let cfg = PageRankConfig {
                            iters: 3,
                            ..PageRankConfig::default()
                        };
                        pagerank::run(&devs, master, "scale", cfg).await.unwrap()
                    }
                });
                outcome.superstep_mean().as_secs_f64()
            })
            .collect();
        assert!(
            times[1] < times[0] * 0.7,
            "8 workers ({:.6}s) should beat 2 workers ({:.6}s)",
            times[1],
            times[0]
        );
    }
}
