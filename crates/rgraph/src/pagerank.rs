//! Distributed pull-style PageRank over RStore.
//!
//! Each worker owns a contiguous vertex range. Setup (control path): map the
//! graph regions, load the in-edge slice, plan the page gather. Each
//! superstep (data path): one batched round of one-sided page reads of the
//! contribution vector, local compute, one contiguous one-sided write of the
//! new contributions, barrier. The master and the memory-server CPUs are
//! never involved.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use fabric::NodeId;
use rdma::RdmaDevice;
use rstore::{RStoreClient, Result};
use sim::sync::Barrier;
use sim::{join_all, SimTime};

use crate::config::CostModel;
use crate::partition::VertexPartition;
use crate::store::{u64s_to_bytes, GraphStore};
use crate::worker::{CsrSlice, PageGather};

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Synchronous iterations to run.
    pub iters: usize,
    /// Damping factor (0.85 in the paper's era).
    pub damping: f64,
    /// Page size for remote gathers of the contribution vector.
    pub page_bytes: u64,
    /// Compute-cost model.
    pub cost: CostModel,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            iters: 10,
            damping: 0.85,
            page_bytes: 4096,
            cost: CostModel::default(),
        }
    }
}

/// Result of a distributed PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankOutcome {
    /// Final ranks, indexed by vertex.
    pub ranks: Vec<f64>,
    /// Wall (virtual) time of the whole job, including worker setup.
    pub total: Duration,
    /// Per-superstep durations observed by worker 0.
    pub superstep_times: Vec<Duration>,
}

impl PageRankOutcome {
    /// Mean superstep duration.
    pub fn superstep_mean(&self) -> Duration {
        if self.superstep_times.is_empty() {
            return Duration::ZERO;
        }
        self.superstep_times.iter().sum::<Duration>() / self.superstep_times.len() as u32
    }
}

struct WorkerOut {
    start: u64,
    ranks: Vec<f64>,
    superstep_times: Vec<Duration>,
}

/// Runs distributed PageRank on a published graph, one worker per device.
///
/// # Errors
///
/// Store or IO failures from any worker.
///
/// # Panics
///
/// Panics if `devs` is empty.
pub async fn run(
    devs: &[RdmaDevice],
    master: NodeId,
    graph: &str,
    cfg: PageRankConfig,
) -> Result<PageRankOutcome> {
    assert!(!devs.is_empty(), "need at least one worker device");
    let k = devs.len() as u64;
    let sim = devs[0].sim().clone();
    let barrier = Barrier::new(devs.len());
    let t0 = sim.now();

    let mut handles = Vec::with_capacity(devs.len());
    for (i, dev) in devs.iter().enumerate() {
        let dev = dev.clone();
        let barrier = barrier.clone();
        let graph = graph.to_owned();
        let sim2 = sim.clone();
        handles.push(sim.spawn(async move {
            worker(i as u64, k, dev, master, graph, cfg, barrier, sim2).await
        }));
    }
    let outs = join_all(handles).await;

    let mut n_total = 0u64;
    for out in &outs {
        match out {
            Ok(w) => n_total = n_total.max(w.start + w.ranks.len() as u64),
            Err(e) => return Err(e.clone()),
        }
    }
    let mut ranks = vec![0.0; n_total as usize];
    let mut superstep_times = Vec::new();
    for out in outs {
        let w = out.expect("errors returned above");
        ranks[w.start as usize..w.start as usize + w.ranks.len()].copy_from_slice(&w.ranks);
        if !w.superstep_times.is_empty() {
            superstep_times = w.superstep_times;
        }
    }
    Ok(PageRankOutcome {
        ranks,
        total: sim.now() - t0,
        superstep_times,
    })
}

#[allow(clippy::too_many_arguments)]
async fn worker(
    me: u64,
    k: u64,
    dev: RdmaDevice,
    master: NodeId,
    graph: String,
    cfg: PageRankConfig,
    barrier: Barrier,
    sim: sim::Sim,
) -> Result<WorkerOut> {
    // ---- control path: setup, paid once -------------------------------------
    let client = RStoreClient::connect(&dev, master).await?;
    let store = GraphStore::open(&client, &graph).await?;
    let part = VertexPartition::new(store.n, k);
    let (s, e) = part.range(me);
    let count = (e - s) as usize;
    let n = store.n;

    let in_slice = CsrSlice::load(&store, &client, "in", s, e).await?;
    let degs = store.read_u64s(&client, "out_deg", s, count as u64).await?;
    let val_a = store.map(&client, "val_a").await?;
    let val_b = store.map(&client, "val_b").await?;

    // Initial state: rank = 1/n, contribution = rank/deg.
    let mut ranks = vec![1.0 / n as f64; count];
    let init_contrib: Vec<u64> = (0..count)
        .map(|i| {
            let c = if degs[i] > 0 {
                ranks[i] / degs[i] as f64
            } else {
                0.0
            };
            c.to_bits()
        })
        .collect();
    val_a.write(s * 8, &u64s_to_bytes(&init_contrib)).await?;
    barrier.wait().await;

    let mut gather_a =
        PageGather::plan(val_a.clone(), in_slice.adj.iter().copied(), cfg.page_bytes)?;
    let mut gather_b =
        PageGather::plan(val_b.clone(), in_slice.adj.iter().copied(), cfg.page_bytes)?;
    let edges = in_slice.edge_count();

    // ---- data path: supersteps ------------------------------------------------
    let times = Rc::new(RefCell::new(Vec::new()));
    for it in 0..cfg.iters {
        let t_start: SimTime = sim.now();
        let (gather, out_region) = if it % 2 == 0 {
            (&mut gather_a, &val_b)
        } else {
            (&mut gather_b, &val_a)
        };
        gather.fetch().await?;

        let mut new_contrib = Vec::with_capacity(count);
        for i in 0..count {
            let v = s + i as u64;
            let mut sum = 0.0;
            for &u in in_slice.neighbors(v) {
                sum += gather.get_f64(u);
            }
            let r = (1.0 - cfg.damping) / n as f64 + cfg.damping * sum;
            ranks[i] = r;
            let c = if degs[i] > 0 { r / degs[i] as f64 } else { 0.0 };
            new_contrib.push(c.to_bits());
        }
        sim.sleep(cfg.cost.superstep(edges, count as u64)).await;
        out_region
            .write(s * 8, &u64s_to_bytes(&new_contrib))
            .await?;
        barrier.wait().await;
        if me == 0 {
            times.borrow_mut().push(sim.now() - t_start);
        }
    }

    let superstep_times = times.borrow().clone();
    Ok(WorkerOut {
        start: s,
        ranks,
        superstep_times,
    })
}
