//! Vertex range partitioning across workers.

/// A balanced contiguous partition of vertices `0..n` across `k` workers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VertexPartition {
    /// Total vertices.
    pub n: u64,
    /// Number of workers.
    pub k: u64,
}

impl VertexPartition {
    /// Creates a partition.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: u64, k: u64) -> Self {
        assert!(k > 0, "at least one worker required");
        VertexPartition { n, k }
    }

    /// First vertex owned by worker `i`.
    pub fn start(&self, i: u64) -> u64 {
        i * self.n / self.k
    }

    /// One past the last vertex owned by worker `i`.
    pub fn end(&self, i: u64) -> u64 {
        (i + 1) * self.n / self.k
    }

    /// The `[start, end)` range of worker `i`.
    pub fn range(&self, i: u64) -> (u64, u64) {
        (self.start(i), self.end(i))
    }

    /// Number of vertices owned by worker `i`.
    pub fn count(&self, i: u64) -> u64 {
        self.end(i) - self.start(i)
    }

    /// The worker owning vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `v >= n`.
    pub fn owner(&self, v: u64) -> u64 {
        debug_assert!(v < self.n, "vertex out of range");
        // The unique i with start(i) <= v < end(i). Empty ranges (k > n)
        // make an arithmetic guess unreliable, so binary-search on end().
        let (mut lo, mut hi) = (0u64, self.k - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.end(mid) <= v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for (n, k) in [(10u64, 3u64), (100, 7), (5, 5), (1, 1), (1000, 12)] {
            let p = VertexPartition::new(n, k);
            let mut covered = 0;
            for i in 0..k {
                let (s, e) = p.range(i);
                assert_eq!(s, covered);
                covered = e;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn owner_matches_ranges() {
        for (n, k) in [(10u64, 3u64), (101, 7), (12, 12), (997, 12)] {
            let p = VertexPartition::new(n, k);
            for v in 0..n {
                let o = p.owner(v);
                assert!(p.start(o) <= v && v < p.end(o), "v={v} o={o} n={n} k={k}");
            }
        }
    }

    #[test]
    fn balance_is_within_one() {
        let p = VertexPartition::new(100, 7);
        let counts: Vec<u64> = (0..7).map(|i| p.count(i)).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn more_workers_than_vertices() {
        let p = VertexPartition::new(3, 5);
        let total: u64 = (0..5).map(|i| p.count(i)).sum();
        assert_eq!(total, 3);
        for v in 0..3 {
            let o = p.owner(v);
            assert!(p.start(o) <= v && v < p.end(o));
        }
    }
}
