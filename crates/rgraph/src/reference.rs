//! Single-node reference implementations used to verify the distributed
//! algorithms.

use workload::CsrGraph;

/// Pull-style PageRank, `iters` synchronous iterations with damping `d`.
/// Matches the distributed kernel exactly (same summation order), so results
/// agree to floating-point exactness.
pub fn pagerank(g: &CsrGraph, iters: usize, d: f64) -> Vec<f64> {
    let n = g.n as usize;
    let mut rank = vec![1.0 / n as f64; n];
    let mut contrib: Vec<f64> = (0..n)
        .map(|v| {
            let deg = g.out_degree(v as u64);
            if deg > 0 {
                rank[v] / deg as f64
            } else {
                0.0
            }
        })
        .collect();
    for _ in 0..iters {
        let mut new_contrib = vec![0.0; n];
        for v in 0..n {
            let mut sum = 0.0;
            for &u in g.in_neighbors(v as u64) {
                sum += contrib[u as usize];
            }
            let r = (1.0 - d) / n as f64 + d * sum;
            rank[v] = r;
            let deg = g.out_degree(v as u64);
            new_contrib[v] = if deg > 0 { r / deg as f64 } else { 0.0 };
        }
        contrib = new_contrib;
    }
    rank
}

/// BFS levels from `src` over out-edges; unreachable vertices get
/// `u64::MAX`.
pub fn bfs(g: &CsrGraph, src: u64) -> Vec<u64> {
    let mut levels = vec![u64::MAX; g.n as usize];
    levels[src as usize] = 0;
    let mut frontier = vec![src];
    let mut depth = 0u64;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.out_neighbors(v) {
                if levels[u as usize] == u64::MAX {
                    levels[u as usize] = depth;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    levels
}

/// Weakly connected components by iterated min-label propagation over both
/// edge directions (matches the distributed Jacobi kernel's fixpoint).
pub fn wcc(g: &CsrGraph) -> Vec<u64> {
    let n = g.n as usize;
    let mut label: Vec<u64> = (0..n as u64).collect();
    loop {
        let mut changed = false;
        let mut next = label.clone();
        for v in 0..n {
            let mut m = label[v];
            for &u in g.in_neighbors(v as u64) {
                m = m.min(label[u as usize]);
            }
            for &u in g.out_neighbors(v as u64) {
                m = m.min(label[u as usize]);
            }
            if m < next[v] {
                next[v] = m;
                changed = true;
            }
        }
        label = next;
        if !changed {
            return label;
        }
    }
}

/// The deterministic synthetic edge weight used by SSSP: in `[1, 16]`.
pub fn edge_weight(u: u64, v: u64) -> u64 {
    let mut x = u.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ v.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    1 + (x % 16)
}

/// Single-source shortest paths (Bellman-Ford over in-edges) with the
/// synthetic [`edge_weight`]; unreachable vertices get `u64::MAX`.
pub fn sssp(g: &CsrGraph, src: u64) -> Vec<u64> {
    let n = g.n as usize;
    let mut dist = vec![u64::MAX; n];
    dist[src as usize] = 0;
    loop {
        let mut changed = false;
        let mut next = dist.clone();
        for v in 0..n {
            let mut best = dist[v];
            for &u in g.in_neighbors(v as u64) {
                if dist[u as usize] != u64::MAX {
                    best = best.min(dist[u as usize] + edge_weight(u, v as u64));
                }
            }
            if best < next[v] {
                next[v] = best;
                changed = true;
            }
        }
        dist = next;
        if !changed {
            return dist;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{rmat_graph, uniform_graph, CsrGraph};

    fn line_graph(n: u64) -> CsrGraph {
        let edges: Vec<(u64, u64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn pagerank_sums_stay_bounded() {
        let g = rmat_graph(8, 2048, 11);
        let ranks = pagerank(&g, 20, 0.85);
        let total: f64 = ranks.iter().sum();
        // With dangling mass leaking, total is in (0, 1].
        assert!(total > 0.2 && total <= 1.0 + 1e-9, "total {total}");
        assert!(ranks.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn pagerank_hub_ranks_higher() {
        // Star: everyone points at vertex 0.
        let edges: Vec<(u64, u64)> = (1..50).map(|i| (i, 0)).collect();
        let g = CsrGraph::from_edges(50, &edges);
        let ranks = pagerank(&g, 30, 0.85);
        assert!(ranks[0] > ranks[1] * 10.0);
    }

    #[test]
    fn bfs_levels_on_line() {
        let g = line_graph(6);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4, 5]);
        let levels = bfs(&g, 3);
        assert_eq!(levels[3], 0);
        assert_eq!(levels[5], 2);
        assert_eq!(levels[0], u64::MAX, "line edges are directed");
    }

    #[test]
    fn wcc_finds_components() {
        // Two disjoint triangles.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let g = CsrGraph::from_edges(6, &edges);
        let labels = wcc(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let g = CsrGraph::from_edges(3, &[(1, 0), (1, 2)]);
        let labels = wcc(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn sssp_on_line_accumulates_weights() {
        let g = line_graph(4);
        let d = sssp(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], edge_weight(0, 1));
        assert_eq!(d[2], d[1] + edge_weight(1, 2));
        assert_eq!(d[3], d[2] + edge_weight(2, 3));
    }

    #[test]
    fn sssp_never_exceeds_bfs_times_max_weight() {
        let g = uniform_graph(200, 1200, 5);
        let levels = bfs(&g, 0);
        let dists = sssp(&g, 0);
        for v in 0..200usize {
            assert_eq!(levels[v] == u64::MAX, dists[v] == u64::MAX);
            if levels[v] != u64::MAX {
                assert!(dists[v] <= levels[v] * 16);
                assert!(dists[v] >= levels[v]);
            }
        }
    }

    #[test]
    fn edge_weight_in_range_and_deterministic() {
        for u in 0..50u64 {
            for v in 0..50u64 {
                let w = edge_weight(u, v);
                assert!((1..=16).contains(&w));
                assert_eq!(w, edge_weight(u, v));
            }
        }
    }
}
