//! Distributed single-source shortest paths (Bellman-Ford supersteps) with
//! the deterministic synthetic edge weights of
//! [`reference::edge_weight`](crate::reference::edge_weight).

use fabric::NodeId;
use rdma::RdmaDevice;
use rstore::Result;

use crate::jacobi::{self, JacobiConfig, JacobiKind, JacobiOutcome};

/// Runs distributed SSSP from `src`, one worker per device.
/// `outcome.values[v]` is the distance from `src` (`u64::MAX` if
/// unreachable).
///
/// # Errors
///
/// Store or IO failures from any worker.
///
/// # Panics
///
/// Panics if `devs` is empty.
pub async fn run(
    devs: &[RdmaDevice],
    master: NodeId,
    graph: &str,
    src: u64,
    cfg: JacobiConfig,
) -> Result<JacobiOutcome> {
    jacobi::run(devs, master, graph, JacobiKind::Sssp { src }, cfg).await
}
