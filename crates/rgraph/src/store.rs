//! Publishing graphs into RStore regions.
//!
//! A graph named `g` occupies these regions in the master's namespace:
//!
//! | region | contents |
//! |---|---|
//! | `g/meta` | `n`, `m` as little-endian u64 |
//! | `g/in_xadj` | in-edge index, `(n+1) × 8` bytes |
//! | `g/in_adj` | in-edge sources, `m × 8` bytes |
//! | `g/out_xadj` | out-edge index |
//! | `g/out_adj` | out-edge targets |
//! | `g/out_deg` | out-degrees, `n × 8` bytes |
//! | `g/val_a`, `g/val_b` | double-buffered per-vertex value vectors |
//!
//! Loading the structure is a one-time control-path action; supersteps touch
//! only the value vectors.

use rstore::{AllocOptions, RStoreClient, Region, Result};
use workload::CsrGraph;

/// Converts a u64 slice to little-endian bytes.
pub fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Parses little-endian bytes into u64s.
///
/// # Panics
///
/// Panics if the length is not a multiple of 8.
pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0, "not a u64 vector");
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// A handle to a graph stored in RStore.
#[derive(Debug)]
pub struct GraphStore {
    /// Graph name (region prefix).
    pub name: String,
    /// Vertex count.
    pub n: u64,
    /// Edge count.
    pub m: u64,
}

/// Write chunk for bulk region loads (stays under the staging allocation).
const LOAD_CHUNK: usize = 8 * 1024 * 1024;

async fn write_vec(region: &Region, bytes: &[u8]) -> Result<()> {
    let mut off = 0usize;
    while off < bytes.len() {
        let end = (off + LOAD_CHUNK).min(bytes.len());
        region.write(off as u64, &bytes[off..end]).await?;
        off = end;
    }
    Ok(())
}

impl GraphStore {
    /// Publishes a graph into RStore under `name`, striped across the
    /// cluster with the given options.
    ///
    /// # Errors
    ///
    /// Allocation or IO failures from the store.
    pub async fn publish(
        client: &RStoreClient,
        name: &str,
        graph: &CsrGraph,
        opts: AllocOptions,
    ) -> Result<GraphStore> {
        let n = graph.n;
        let m = graph.m();
        let alloc = |suffix: &str, size: u64| {
            let name = format!("{name}/{suffix}");
            let client = client.clone();
            async move { client.alloc(&name, size.max(8), opts).await }
        };

        let meta = alloc("meta", 16).await?;
        meta.write(0, &u64s_to_bytes(&[n, m])).await?;

        let r = alloc("in_xadj", (n + 1) * 8).await?;
        write_vec(&r, &u64s_to_bytes(&graph.in_xadj)).await?;
        let r = alloc("in_adj", m * 8).await?;
        write_vec(&r, &u64s_to_bytes(&graph.in_adj)).await?;
        let r = alloc("out_xadj", (n + 1) * 8).await?;
        write_vec(&r, &u64s_to_bytes(&graph.out_xadj)).await?;
        let r = alloc("out_adj", m * 8).await?;
        write_vec(&r, &u64s_to_bytes(&graph.out_adj)).await?;

        let degs: Vec<u64> = (0..n).map(|v| graph.out_degree(v)).collect();
        let r = alloc("out_deg", n * 8).await?;
        write_vec(&r, &u64s_to_bytes(&degs)).await?;

        alloc("val_a", n * 8).await?;
        alloc("val_b", n * 8).await?;

        Ok(GraphStore {
            name: name.to_owned(),
            n,
            m,
        })
    }

    /// Opens a published graph by name.
    ///
    /// # Errors
    ///
    /// [`rstore::RStoreError::NotFound`] if the graph was not published.
    pub async fn open(client: &RStoreClient, name: &str) -> Result<GraphStore> {
        let meta = client.map(&format!("{name}/meta")).await?;
        let bytes = meta.read(0, 16).await?;
        let v = bytes_to_u64s(&bytes);
        Ok(GraphStore {
            name: name.to_owned(),
            n: v[0],
            m: v[1],
        })
    }

    /// Maps one of the graph's regions from this client.
    ///
    /// # Errors
    ///
    /// Mapping failures from the store.
    pub async fn map(&self, client: &RStoreClient, suffix: &str) -> Result<Region> {
        client.map(&format!("{}/{}", self.name, suffix)).await
    }

    /// Reads a u64 slice `[first, first + count)` out of one of the graph's
    /// vector regions.
    ///
    /// # Errors
    ///
    /// Mapping or IO failures.
    pub async fn read_u64s(
        &self,
        client: &RStoreClient,
        suffix: &str,
        first: u64,
        count: u64,
    ) -> Result<Vec<u64>> {
        let region = self.map(client, suffix).await?;
        let bytes = region.read(first * 8, count * 8).await?;
        Ok(bytes_to_u64s(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_codec_round_trips() {
        let v = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&v)), v);
    }

    #[test]
    #[should_panic(expected = "not a u64 vector")]
    fn ragged_bytes_panic() {
        bytes_to_u64s(&[1, 2, 3]);
    }
}
