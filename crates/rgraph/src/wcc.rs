//! Distributed weakly-connected components (min-label propagation).

use fabric::NodeId;
use rdma::RdmaDevice;
use rstore::Result;

use crate::jacobi::{self, JacobiConfig, JacobiKind, JacobiOutcome};

/// Runs distributed WCC on a published graph, one worker per device.
/// `outcome.values[v]` is the smallest vertex id in `v`'s component.
///
/// # Errors
///
/// Store or IO failures from any worker.
///
/// # Panics
///
/// Panics if `devs` is empty.
pub async fn run(
    devs: &[RdmaDevice],
    master: NodeId,
    graph: &str,
    cfg: JacobiConfig,
) -> Result<JacobiOutcome> {
    jacobi::run(devs, master, graph, JacobiKind::Wcc, cfg).await
}
