//! Worker-side building blocks: partition slices, page-granular gathers,
//! one-sided mailboxes, and the convergence board.
//!
//! These encode the RStore idioms the paper's graph framework is built from:
//! *setup once* (map regions, load static structure), then supersteps that
//! touch remote memory only through batched one-sided reads and writes.

use std::collections::HashMap;

use rdma::DmaBuf;
use rstore::{AllocOptions, RStoreClient, Region, Result};

use crate::partition::VertexPartition;
use crate::store::{bytes_to_u64s, u64s_to_bytes, GraphStore};

/// The static, per-worker slice of a CSR index: the `adj` range of every
/// owned vertex, loaded once at startup.
#[derive(Debug)]
pub struct CsrSlice {
    /// First owned vertex.
    pub start: u64,
    /// Rebased index: `adj[xadj[i] .. xadj[i+1]]` are the neighbours of
    /// vertex `start + i`.
    pub xadj: Vec<u64>,
    /// Neighbour ids.
    pub adj: Vec<u64>,
}

impl CsrSlice {
    /// Loads the slice `[start, end)` of `<which>_xadj` / `<which>_adj`
    /// (`which` is `"in"` or `"out"`).
    ///
    /// # Errors
    ///
    /// Mapping or IO failures.
    pub async fn load(
        store: &GraphStore,
        client: &RStoreClient,
        which: &str,
        start: u64,
        end: u64,
    ) -> Result<CsrSlice> {
        let raw_xadj = store
            .read_u64s(client, &format!("{which}_xadj"), start, end - start + 1)
            .await?;
        let lo = raw_xadj[0];
        let hi = *raw_xadj.last().expect("non-empty");
        let adj = if hi > lo {
            store
                .read_u64s(client, &format!("{which}_adj"), lo, hi - lo)
                .await?
        } else {
            Vec::new()
        };
        let xadj = raw_xadj.iter().map(|x| x - lo).collect();
        Ok(CsrSlice { start, xadj, adj })
    }

    /// Neighbours of owned vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the loaded slice.
    pub fn neighbors(&self, v: u64) -> &[u64] {
        let i = (v - self.start) as usize;
        &self.adj[self.xadj[i] as usize..self.xadj[i + 1] as usize]
    }

    /// Total edges in the slice.
    pub fn edge_count(&self) -> u64 {
        self.adj.len() as u64
    }
}

/// A reusable page-granular gather over a u64/f64 vector region.
///
/// Built once from the set of element ids a worker needs every superstep
/// (the in-neighbour closure); [`PageGather::fetch`] then issues one batched
/// round of one-sided reads per superstep.
pub struct PageGather {
    region: Region,
    page_elems: u64,
    pages: Vec<u64>,
    slot_of: HashMap<u64, usize>,
    buf: DmaBuf,
    values: Vec<u64>,
    total_elems: u64,
}

impl std::fmt::Debug for PageGather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGather")
            .field("pages", &self.pages.len())
            .field("page_elems", &self.page_elems)
            .finish()
    }
}

impl PageGather {
    /// Plans a gather of the given element ids from `region` (a vector of
    /// 8-byte elements), using pages of `page_bytes`.
    ///
    /// # Errors
    ///
    /// Buffer allocation failures.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a multiple of 8 or zero.
    pub fn plan(
        region: Region,
        ids: impl IntoIterator<Item = u64>,
        page_bytes: u64,
    ) -> Result<PageGather> {
        assert!(
            page_bytes >= 8 && page_bytes.is_multiple_of(8),
            "bad page size"
        );
        let page_elems = page_bytes / 8;
        let total_elems = region.size() / 8;
        let mut pages: Vec<u64> = ids.into_iter().map(|id| id / page_elems).collect();
        pages.sort_unstable();
        pages.dedup();
        let slot_of = pages
            .iter()
            .enumerate()
            .map(|(slot, &p)| (p, slot))
            .collect();
        let dev = region.client().device().clone();
        let buf = dev.alloc((pages.len() as u64 * page_bytes).max(8))?;
        Ok(PageGather {
            region,
            page_elems,
            pages,
            slot_of,
            buf,
            values: Vec::new(),
            total_elems,
        })
    }

    /// Number of pages fetched per superstep.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Issues all page reads (pipelined) and waits for completion.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub async fn fetch(&mut self) -> Result<()> {
        let page_bytes = self.page_elems * 8;
        let mut handles = Vec::with_capacity(self.pages.len());
        for (slot, &p) in self.pages.iter().enumerate() {
            let offset = p * page_bytes;
            let len = page_bytes.min(self.total_elems * 8 - offset);
            let dst = self.buf.slice(slot as u64 * page_bytes, len);
            handles.push(self.region.start_read(offset, dst)?);
        }
        for h in handles {
            h.wait().await?;
        }
        let dev = self.region.client().device().clone();
        let bytes = dev.read_mem(self.buf.addr, self.pages.len() as u64 * page_bytes)?;
        self.values = bytes_to_u64s(&bytes);
        Ok(())
    }

    /// The fetched element `id`, as raw u64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `id`'s page was not part of the plan or
    /// [`PageGather::fetch`] has not run.
    pub fn get(&self, id: u64) -> u64 {
        let page = id / self.page_elems;
        let slot = *self.slot_of.get(&page).expect("id not in gather plan");
        self.values[slot * self.page_elems as usize + (id % self.page_elems) as usize]
    }

    /// The fetched element `id`, as f64.
    ///
    /// # Panics
    ///
    /// As for [`PageGather::get`].
    pub fn get_f64(&self, id: u64) -> f64 {
        f64::from_bits(self.get(id))
    }
}

/// All-to-all one-sided mailboxes: worker `i` writes its outbox for worker
/// `j` directly into `j`'s mailbox region; after a barrier, `j` reads its
/// row. Message passing without any receiver CPU.
pub struct Mailboxes {
    prefix: String,
    k: u64,
    me: u64,
    cap: u64,
    /// `out[j]`: the region this worker writes for worker `j`.
    out: Vec<Region>,
    /// `inn[i]`: the region worker `i` writes for this worker.
    inn: Vec<Region>,
}

impl std::fmt::Debug for Mailboxes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailboxes")
            .field("prefix", &self.prefix)
            .field("k", &self.k)
            .field("me", &self.me)
            .finish()
    }
}

impl Mailboxes {
    /// Allocates the `k × k` mailbox regions, each holding up to `cap`
    /// u64 payload elements (plus a count header). Call once per job.
    ///
    /// # Errors
    ///
    /// Allocation failures.
    pub async fn create(
        client: &RStoreClient,
        prefix: &str,
        k: u64,
        cap: u64,
        opts: AllocOptions,
    ) -> Result<()> {
        for i in 0..k {
            for j in 0..k {
                client
                    .alloc(&format!("{prefix}/mbox_{i}_{j}"), (cap + 1) * 8, opts)
                    .await?;
            }
        }
        Ok(())
    }

    /// Maps this worker's row and column.
    ///
    /// # Errors
    ///
    /// Mapping failures.
    pub async fn open(client: &RStoreClient, prefix: &str, k: u64, me: u64) -> Result<Mailboxes> {
        let mut out = Vec::with_capacity(k as usize);
        let mut inn = Vec::with_capacity(k as usize);
        for j in 0..k {
            out.push(client.map(&format!("{prefix}/mbox_{me}_{j}")).await?);
        }
        for i in 0..k {
            inn.push(client.map(&format!("{prefix}/mbox_{i}_{me}")).await?);
        }
        let cap = out[0].size() / 8 - 1;
        Ok(Mailboxes {
            prefix: prefix.to_owned(),
            k,
            me,
            cap,
            out,
            inn,
        })
    }

    /// Writes one outbox per destination worker (index = worker id).
    ///
    /// # Errors
    ///
    /// IO failures, or [`rstore::RStoreError::OutOfRange`] if an outbox
    /// exceeds the mailbox capacity.
    ///
    /// # Panics
    ///
    /// Panics if `outboxes.len() != k`.
    pub async fn send_all(&self, outboxes: &[Vec<u64>]) -> Result<()> {
        assert_eq!(outboxes.len() as u64, self.k, "one outbox per worker");
        for (j, outbox) in outboxes.iter().enumerate() {
            let mut msg = Vec::with_capacity(outbox.len() + 1);
            msg.push(outbox.len() as u64);
            msg.extend_from_slice(outbox);
            self.out[j].write(0, &u64s_to_bytes(&msg)).await?;
        }
        Ok(())
    }

    /// Reads every incoming mailbox (call after the superstep barrier).
    ///
    /// # Errors
    ///
    /// IO failures.
    pub async fn recv_all(&self) -> Result<Vec<Vec<u64>>> {
        let mut all = Vec::with_capacity(self.k as usize);
        for i in 0..self.k as usize {
            let count = bytes_to_u64s(&self.inn[i].read(0, 8).await?)[0];
            debug_assert!(count <= self.cap, "corrupt mailbox header");
            let payload = if count > 0 {
                bytes_to_u64s(&self.inn[i].read(8, count * 8).await?)
            } else {
                Vec::new()
            };
            all.push(payload);
        }
        Ok(all)
    }

    /// Groups items by destination worker, producing the outbox layout
    /// expected by [`Mailboxes::send_all`].
    pub fn route(part: &VertexPartition, items: impl IntoIterator<Item = u64>) -> Vec<Vec<u64>> {
        let mut outboxes = vec![Vec::new(); part.k as usize];
        for v in items {
            outboxes[part.owner(v) as usize].push(v);
        }
        outboxes
    }
}

/// A tiny shared scoreboard: each worker posts one u64 per superstep (e.g.
/// its local change count); everyone reads the vector after the barrier to
/// decide termination — distributed convergence without a coordinator.
pub struct ConvBoard {
    region: Region,
    k: u64,
}

impl std::fmt::Debug for ConvBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConvBoard").field("k", &self.k).finish()
    }
}

impl ConvBoard {
    /// Allocates the scoreboard region (call once per job).
    ///
    /// # Errors
    ///
    /// Allocation failures.
    pub async fn create(
        client: &RStoreClient,
        name: &str,
        k: u64,
        opts: AllocOptions,
    ) -> Result<()> {
        client.alloc(name, k * 8, opts).await?;
        Ok(())
    }

    /// Maps the scoreboard.
    ///
    /// # Errors
    ///
    /// Mapping failures.
    pub async fn open(client: &RStoreClient, name: &str, k: u64) -> Result<ConvBoard> {
        Ok(ConvBoard {
            region: client.map(name).await?,
            k,
        })
    }

    /// Posts this worker's value.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub async fn post(&self, me: u64, value: u64) -> Result<()> {
        self.region.write(me * 8, &value.to_le_bytes()).await
    }

    /// Reads every worker's value.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub async fn read_all(&self) -> Result<Vec<u64>> {
        Ok(bytes_to_u64s(&self.region.read(0, self.k * 8).await?))
    }

    /// Sum of all posted values (the usual termination metric).
    ///
    /// # Errors
    ///
    /// IO failures.
    pub async fn total(&self) -> Result<u64> {
        Ok(self.read_all().await?.iter().sum())
    }
}
