//! The distributed sort itself.
//!
//! Phase structure (all coordination over RStore, all bulk data movement
//! one-sided):
//!
//! 1. **Sample** — each worker reads a key sample from its input slice;
//!    worker 0 derives range splitters and publishes them.
//! 2. **Partition & count** — each worker streams its input slice, buckets
//!    records by splitter, and posts its counts row to the shared counts
//!    region; the full matrix gives every worker the exact output offset of
//!    every chunk ([`ShufflePlan`]).
//! 3. **Shuffle** — each worker RDMA-writes each bucket directly to its
//!    final location in the output region. No receiver CPU, no
//!    intermediate spooling.
//! 4. **Local sort** — each worker reads its output partition, sorts it in
//!    memory, and writes it back. The output region is then globally
//!    sorted.
//!
//! The same code runs in two modes: [`SortMode::Real`] moves and sorts real
//! TeraGen records (fully verifiable at laptop scale); [`SortMode::Fluid`]
//! uses synthetic (unbacked) regions so the 256 GB headline experiment runs
//! with exact timing but no data movement.

use std::time::Duration;

use fabric::NodeId;
use rdma::RdmaDevice;
use rstore::{AllocOptions, RStoreClient, Region, Result};
use sim::sync::Barrier;
use sim::{join_all, Sim};
use workload::{sort_records, KEY_BYTES, RECORD_BYTES};

use crate::plan::{choose_splitters, partition_records, Key, ShufflePlan};

/// Whether the sort moves real bytes or synthetic sizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortMode {
    /// Real records; output is verifiable.
    Real,
    /// Synthetic regions; timing only (for paper-scale runs).
    Fluid,
}

/// CPU-throughput model for the sort's compute phases, representing all
/// cores of a worker machine.
#[derive(Clone, Copy, Debug)]
pub struct SortCostModel {
    /// Partitioning pass throughput (bytes/s).
    pub partition_bps: u64,
    /// In-memory sort throughput (bytes/s).
    pub sort_bps: u64,
}

impl Default for SortCostModel {
    fn default() -> Self {
        SortCostModel {
            partition_bps: 4_000_000_000,
            sort_bps: 2_500_000_000,
        }
    }
}

/// Sort parameters.
#[derive(Clone, Debug)]
pub struct SortConfig {
    /// Keys sampled per worker for splitter selection.
    pub sample_per_worker: usize,
    /// Streaming IO chunk size in bytes (multiple of the record size).
    pub io_chunk: u64,
    /// Compute model.
    pub cost: SortCostModel,
    /// Region-name prefix for this job.
    pub job: String,
    /// Data or timing-only.
    pub mode: SortMode,
    /// Striping for the job's regions.
    pub opts: AllocOptions,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            sample_per_worker: 256,
            io_chunk: 8 * 1024 * 1024,
            cost: SortCostModel::default(),
            job: "sort".into(),
            mode: SortMode::Real,
            opts: AllocOptions::default(),
        }
    }
}

/// Per-phase timing of a sort run (virtual time, as seen by worker 0).
#[derive(Clone, Copy, Default, Debug)]
pub struct PhaseTimes {
    /// Splitter sampling and publication.
    pub sample: Duration,
    /// Input streaming + partitioning + counts exchange.
    pub partition: Duration,
    /// One-sided shuffle writes.
    pub shuffle: Duration,
    /// Partition read + in-memory sort + write-back.
    pub local_sort: Duration,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.sample + self.partition + self.shuffle + self.local_sort
    }
}

/// Result of a sort run.
#[derive(Clone, Debug)]
pub struct SortOutcome {
    /// Records sorted.
    pub records: u64,
    /// End-to-end virtual time (including job-region setup).
    pub total: Duration,
    /// Phase breakdown.
    pub phases: PhaseTimes,
}

/// Loads real input records into the job's input region (call before
/// [`run`] in [`SortMode::Real`]).
///
/// # Errors
///
/// Allocation or IO failures.
///
/// # Panics
///
/// Panics if `records` is not a whole number of records.
pub async fn load_input(client: &RStoreClient, cfg: &SortConfig, records: &[u8]) -> Result<Region> {
    assert_eq!(records.len() % RECORD_BYTES, 0, "ragged input");
    let region = client
        .alloc(
            &format!("{}/input", cfg.job),
            records.len() as u64,
            cfg.opts,
        )
        .await?;
    let mut off = 0usize;
    while off < records.len() {
        let end = (off + cfg.io_chunk as usize).min(records.len());
        region.write(off as u64, &records[off..end]).await?;
        off = end;
    }
    Ok(region)
}

/// Creates a synthetic input region of `records` records for
/// [`SortMode::Fluid`] runs.
///
/// # Errors
///
/// Allocation failures.
pub async fn create_fluid_input(
    client: &RStoreClient,
    cfg: &SortConfig,
    records: u64,
) -> Result<Region> {
    let opts = AllocOptions {
        synthetic: true,
        ..cfg.opts
    };
    client
        .alloc(
            &format!("{}/input", cfg.job),
            records * RECORD_BYTES as u64,
            opts,
        )
        .await
}

/// Runs the distributed sort, one worker per device. The input region must
/// exist (see [`load_input`] / [`create_fluid_input`]).
///
/// # Errors
///
/// Store or IO failures from any worker.
///
/// # Panics
///
/// Panics if `devs` is empty.
pub async fn run(devs: &[RdmaDevice], master: NodeId, cfg: SortConfig) -> Result<SortOutcome> {
    assert!(!devs.is_empty(), "need at least one worker device");
    let k = devs.len();
    let sim = devs[0].sim().clone();
    let barrier = Barrier::new(k);
    let t0 = sim.now();

    // Job-scoped region setup happens before any worker is spawned so that
    // allocation failures (e.g. insufficient cluster capacity for the
    // output region) surface as clean errors instead of stranding workers
    // at the first barrier.
    {
        let setup = RStoreClient::connect(&devs[0], master).await?;
        let input = setup.map(&format!("{}/input", cfg.job)).await?;
        let n = input.size() / RECORD_BYTES as u64;
        let fluid = cfg.mode == SortMode::Fluid;
        let out_opts = if fluid {
            AllocOptions {
                synthetic: true,
                ..cfg.opts
            }
        } else {
            cfg.opts
        };
        setup
            .alloc(
                &format!("{}/samples", cfg.job),
                (k * cfg.sample_per_worker * KEY_BYTES).max(8) as u64,
                cfg.opts,
            )
            .await?;
        setup
            .alloc(
                &format!("{}/splitters", cfg.job),
                ((k - 1) * KEY_BYTES).max(8) as u64,
                cfg.opts,
            )
            .await?;
        setup
            .alloc(&format!("{}/counts", cfg.job), (k * k * 8) as u64, cfg.opts)
            .await?;
        setup
            .alloc(
                &format!("{}/output", cfg.job),
                n * RECORD_BYTES as u64,
                out_opts,
            )
            .await?;
    }

    let mut handles = Vec::with_capacity(k);
    for (i, dev) in devs.iter().enumerate() {
        let dev = dev.clone();
        let barrier = barrier.clone();
        let cfg = cfg.clone();
        let sim2 = sim.clone();
        handles.push(sim.spawn(async move { worker(i, k, dev, master, cfg, barrier, sim2).await }));
    }
    let outs = join_all(handles).await;

    let mut records = 0;
    let mut phases = PhaseTimes::default();
    for out in outs {
        match out {
            Ok(Some((r, p))) => {
                records = r;
                phases = p;
            }
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(SortOutcome {
        records,
        total: sim.now() - t0,
        phases,
    })
}

fn cpu_time(bytes: u64, bps: u64) -> Duration {
    Duration::from_nanos((bytes as u128 * 1_000_000_000 / bps as u128) as u64)
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
async fn worker(
    me: usize,
    k: usize,
    dev: RdmaDevice,
    master: NodeId,
    cfg: SortConfig,
    barrier: Barrier,
    sim: Sim,
) -> Result<Option<(u64, PhaseTimes)>> {
    let fluid = cfg.mode == SortMode::Fluid;
    // Stream in whole records.
    let io_chunk = (cfg.io_chunk / RECORD_BYTES as u64).max(1) * RECORD_BYTES as u64;
    let client = RStoreClient::connect(&dev, master).await?;
    let input = client.map(&format!("{}/input", cfg.job)).await?;
    let n = input.size() / RECORD_BYTES as u64;
    let part_start = me as u64 * n / k as u64;
    let part_end = (me as u64 + 1) * n / k as u64;
    let my_records = part_end - part_start;
    let mut phases = PhaseTimes::default();

    let samples_r = client.map(&format!("{}/samples", cfg.job)).await?;
    let splitters_r = client.map(&format!("{}/splitters", cfg.job)).await?;
    let counts_r = client.map(&format!("{}/counts", cfg.job)).await?;
    let output = client.map(&format!("{}/output", cfg.job)).await?;

    // ---- phase 1: sample ---------------------------------------------------------
    let t = sim.now();
    let samples = cfg.sample_per_worker.min(my_records as usize);
    let mut my_sample = Vec::with_capacity(samples * KEY_BYTES);
    for s in 0..samples {
        let rec = part_start + (s as u64 * my_records / samples.max(1) as u64);
        let key = input
            .read(rec * RECORD_BYTES as u64, KEY_BYTES as u64)
            .await?;
        my_sample.extend_from_slice(&key);
    }
    samples_r
        .write((me * cfg.sample_per_worker * KEY_BYTES) as u64, &my_sample)
        .await?;
    barrier.wait().await;

    if me == 0 && !fluid {
        let all = samples_r.read(0, samples_r.size()).await?;
        let mut keys: Vec<Key> = all
            .chunks_exact(KEY_BYTES)
            .map(|c| c.try_into().expect("key size"))
            .collect();
        let splitters = choose_splitters(&mut keys, k);
        let flat: Vec<u8> = splitters.iter().flat_map(|s| s.iter().copied()).collect();
        splitters_r.write(0, &flat).await?;
    }
    barrier.wait().await;
    let splitters: Vec<Key> = if fluid {
        Vec::new()
    } else {
        splitters_r
            .read(0, ((k - 1) * KEY_BYTES) as u64)
            .await?
            .chunks_exact(KEY_BYTES)
            .map(|c| c.try_into().expect("key size"))
            .collect()
    };
    phases.sample = sim.now() - t;

    // ---- phase 2: stream, partition, count ---------------------------------------
    let t = sim.now();
    let my_bytes = my_records * RECORD_BYTES as u64;
    let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); k];
    let mut read_off = part_start * RECORD_BYTES as u64;
    let mut remaining = my_bytes;
    while remaining > 0 {
        let chunk = remaining.min(io_chunk);
        if fluid {
            // Timing-only read of the chunk.
            let staging = dev.alloc_synthetic(chunk)?;
            input.read_into(read_off, staging).await?;
            dev.free(staging)?;
        } else {
            let bytes = input.read(read_off, chunk).await?;
            for (d, part) in partition_records(&bytes, &splitters)
                .into_iter()
                .enumerate()
            {
                buckets[d].extend_from_slice(&part);
            }
        }
        read_off += chunk;
        remaining -= chunk;
    }
    sim.sleep(cpu_time(my_bytes, cfg.cost.partition_bps)).await;

    let my_counts: Vec<u64> = if fluid {
        // Uniform keys: an even split with the remainder on the last worker.
        let mut c = vec![my_records / k as u64; k];
        c[k - 1] += my_records % k as u64;
        c
    } else {
        buckets
            .iter()
            .map(|b| (b.len() / RECORD_BYTES) as u64)
            .collect()
    };
    let flat: Vec<u8> = my_counts.iter().flat_map(|c| c.to_le_bytes()).collect();
    counts_r.write((me * k * 8) as u64, &flat).await?;
    barrier.wait().await;

    let all_counts = counts_r.read(0, (k * k * 8) as u64).await?;
    let matrix: Vec<Vec<u64>> = all_counts
        .chunks_exact(k * 8)
        .map(|row| {
            row.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
                .collect()
        })
        .collect();
    let plan = ShufflePlan::new(matrix);
    phases.partition = sim.now() - t;

    // ---- phase 3: one-sided shuffle ------------------------------------------------
    let t = sim.now();
    let mut shuffle_handles = Vec::new();
    let mut staging = Vec::new();
    for j in 0..k {
        let bytes = plan.count(me, j) * RECORD_BYTES as u64;
        if bytes == 0 {
            continue;
        }
        let offset = plan.write_index(me, j) * RECORD_BYTES as u64;
        let buf = if fluid {
            dev.alloc_synthetic(bytes)?
        } else {
            let b = dev.alloc(bytes)?;
            dev.write_mem(b.addr, &buckets[j])?;
            b
        };
        shuffle_handles.push(output.start_write(offset, buf)?);
        staging.push(buf);
    }
    for h in shuffle_handles {
        h.wait().await?;
    }
    for b in staging {
        dev.free(b)?;
    }
    drop(buckets);
    barrier.wait().await;
    phases.shuffle = sim.now() - t;

    // ---- phase 4: local sort ---------------------------------------------------------
    let t = sim.now();
    let (p_start, p_end) = plan.partition_range(me);
    let p_bytes = (p_end - p_start) * RECORD_BYTES as u64;
    if p_bytes > 0 {
        if fluid {
            let staging = dev.alloc_synthetic(p_bytes)?;
            output
                .read_into(p_start * RECORD_BYTES as u64, staging)
                .await?;
            sim.sleep(cpu_time(p_bytes, cfg.cost.sort_bps)).await;
            output
                .write_from(p_start * RECORD_BYTES as u64, staging)
                .await?;
            dev.free(staging)?;
        } else {
            let mut data = output.read(p_start * RECORD_BYTES as u64, p_bytes).await?;
            sort_records(&mut data);
            sim.sleep(cpu_time(p_bytes, cfg.cost.sort_bps)).await;
            output.write(p_start * RECORD_BYTES as u64, &data).await?;
        }
    }
    barrier.wait().await;
    phases.local_sort = sim.now() - t;

    Ok(if me == 0 { Some((n, phases)) } else { None })
}
