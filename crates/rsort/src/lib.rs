//! A distributed Key-Value sorter on RStore — the paper's second showcase
//! application (TeraSort-style: 10-byte keys, 100-byte records).
//!
//! The sorter showcases what RStore's one-sided, memory-like API buys a data
//! pipeline: after splitter agreement, the entire shuffle is RDMA writes to
//! *final* output locations — there is no receiving CPU, no re-spooling, no
//! framework between a worker and remote DRAM. See [`distributed`] for the
//! phase structure and [`plan`] for the routing math.
//!
//! # Example
//!
//! ```rust
//! use rstore::{Cluster, ClusterConfig};
//! use rsort::{distributed, SortConfig};
//!
//! # fn main() -> rstore::Result<()> {
//! let cluster = Cluster::boot(ClusterConfig {
//!     clients: 2,
//!     ..ClusterConfig::with_servers(3)
//! })?;
//! let sim = cluster.sim.clone();
//! let sorted = sim.block_on(async move {
//!     let loader = cluster.client(0).await.unwrap();
//!     let cfg = SortConfig::default();
//!     let input = workload::teragen(1000, 7);
//!     distributed::load_input(&loader, &cfg, &input).await.unwrap();
//!     distributed::run(&cluster.client_devs, cluster.master_node(), cfg.clone())
//!         .await
//!         .unwrap();
//!     let out = loader.map("sort/output").await.unwrap();
//!     let bytes = out.read(0, out.size()).await.unwrap();
//!     workload::is_sorted(&bytes)
//! });
//! assert!(sorted);
//! # Ok(())
//! # }
//! ```

pub mod distributed;
pub mod plan;

pub use distributed::{
    create_fluid_input, load_input, run, PhaseTimes, SortConfig, SortCostModel, SortMode,
    SortOutcome,
};
pub use plan::{choose_splitters, dest_of, partition_records, Key, ShufflePlan};

#[cfg(test)]
mod tests {
    use super::*;
    use rstore::{AllocOptions, Cluster, ClusterConfig, RStoreClient};
    use workload::{is_sorted, teragen, RECORD_BYTES};

    fn cluster(servers: usize, clients: usize) -> Cluster {
        Cluster::boot(ClusterConfig {
            clients,
            ..ClusterConfig::with_servers(servers)
        })
        .expect("boot")
    }

    /// Order-independent multiset fingerprint of the records in a buffer.
    fn fingerprint(buf: &[u8]) -> u128 {
        buf.chunks_exact(RECORD_BYTES)
            .map(|rec| {
                let mut h = 0xcbf29ce484222325u128;
                for &b in rec {
                    h = (h ^ b as u128).wrapping_mul(0x100000001b3);
                }
                h
            })
            .fold(0u128, |acc, h| acc.wrapping_add(h))
    }

    fn run_real_sort(workers: usize, records: u64, seed: u64) -> (Vec<u8>, Vec<u8>, SortOutcome) {
        let cl = cluster(3, workers);
        let sim = cl.sim.clone();
        let devs = cl.client_devs.clone();
        let master = cl.master_node();
        sim.block_on(async move {
            let loader = RStoreClient::connect(&devs[0], master).await.unwrap();
            let cfg = SortConfig {
                io_chunk: 64 * 1024,
                opts: AllocOptions {
                    stripe_size: 256 * 1024,
                    ..AllocOptions::default()
                },
                ..SortConfig::default()
            };
            let input = teragen(records, seed);
            distributed::load_input(&loader, &cfg, &input)
                .await
                .unwrap();
            let outcome = distributed::run(&devs, master, cfg).await.unwrap();
            let out = loader.map("sort/output").await.unwrap();
            let bytes = out.read(0, out.size()).await.unwrap();
            (input, bytes, outcome)
        })
    }

    #[test]
    fn sorts_correctly_with_multiple_workers() {
        let (input, output, outcome) = run_real_sort(4, 2000, 11);
        assert_eq!(output.len(), input.len());
        assert!(is_sorted(&output), "output must be globally sorted");
        assert_eq!(
            fingerprint(&input),
            fingerprint(&output),
            "output must be a permutation of the input"
        );
        assert_eq!(outcome.records, 2000);
        assert!(outcome.phases.total() <= outcome.total);
    }

    #[test]
    fn single_worker_sort_works() {
        let (_, output, outcome) = run_real_sort(1, 500, 3);
        assert!(is_sorted(&output));
        assert_eq!(outcome.records, 500);
    }

    #[test]
    fn skewed_worker_counts_handle_remainders() {
        // 7 workers over 1001 records: uneven slices everywhere.
        let (input, output, _) = run_real_sort(7, 1001, 23);
        assert!(is_sorted(&output));
        assert_eq!(fingerprint(&input), fingerprint(&output));
    }

    #[test]
    fn fluid_sort_reports_paper_scale_timing() {
        // 1 GB fluid sort on 4 workers: no data moves, but the phase times
        // must be consistent with link bandwidth.
        let cl = cluster(4, 4);
        let sim = cl.sim.clone();
        let devs = cl.client_devs.clone();
        let master = cl.master_node();
        let outcome = sim.block_on(async move {
            let loader = RStoreClient::connect(&devs[0], master).await.unwrap();
            let cfg = SortConfig {
                mode: SortMode::Fluid,
                job: "fsort".into(),
                opts: AllocOptions {
                    stripe_size: 16 * 1024 * 1024,
                    ..AllocOptions::default()
                },
                ..SortConfig::default()
            };
            let records = (1u64 << 30) / RECORD_BYTES as u64;
            distributed::create_fluid_input(&loader, &cfg, records)
                .await
                .unwrap();
            distributed::run(&devs, master, cfg).await.unwrap()
        });
        let gb = 1.0f64;
        let secs = outcome.total.as_secs_f64();
        // 4 workers with ~6.8 GB/s links: a 1 GB end-to-end sort (read +
        // shuffle + sort + write) should take a fraction of a second but
        // clearly more than a single pass at aggregate bandwidth.
        assert!(secs > gb / (4.0 * 6.79) / 4.0, "too fast: {secs}s");
        assert!(secs < 3.0, "too slow: {secs}s");
        assert!(outcome.phases.shuffle > std::time::Duration::ZERO);
        assert!(outcome.phases.local_sort > outcome.phases.sample);
    }

    #[test]
    fn fluid_and_real_phase_structure_agree() {
        // At the same (small) size, fluid timing should approximate real
        // timing: the model is the same machinery minus the memcpys.
        let (.., real) = run_real_sort(2, 2000, 5);
        let cl = cluster(3, 2);
        let sim = cl.sim.clone();
        let devs = cl.client_devs.clone();
        let master = cl.master_node();
        let fluid = sim.block_on(async move {
            let loader = RStoreClient::connect(&devs[0], master).await.unwrap();
            let cfg = SortConfig {
                mode: SortMode::Fluid,
                io_chunk: 64 * 1024,
                job: "fsort2".into(),
                opts: AllocOptions {
                    stripe_size: 256 * 1024,
                    ..AllocOptions::default()
                },
                ..SortConfig::default()
            };
            distributed::create_fluid_input(&loader, &cfg, 2000)
                .await
                .unwrap();
            distributed::run(&devs, master, cfg).await.unwrap()
        });
        let r = real.total.as_secs_f64();
        let f = fluid.total.as_secs_f64();
        assert!(
            (f / r) > 0.4 && (f / r) < 2.5,
            "fluid ({f:.6}s) should approximate real ({r:.6}s)"
        );
    }
}
