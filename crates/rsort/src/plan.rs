//! Pure sort-planning math: splitter selection, record routing, and shuffle
//! offset computation.

use workload::{KEY_BYTES, RECORD_BYTES};

/// A sort key (first 10 bytes of a record).
pub type Key = [u8; KEY_BYTES];

/// Picks `k - 1` splitters from a sample of keys, partitioning the key space
/// into `k` roughly equal ranges. The sample is sorted in place.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn choose_splitters(sample: &mut Vec<Key>, k: usize) -> Vec<Key> {
    assert!(k > 0, "need at least one partition");
    sample.sort_unstable();
    (1..k)
        .map(|i| {
            if sample.is_empty() {
                [0u8; KEY_BYTES]
            } else {
                sample[(i * sample.len() / k).min(sample.len() - 1)]
            }
        })
        .collect()
}

/// The partition a key belongs to: `dest_of(key) = |{s in splitters : s <= key}|`.
pub fn dest_of(key: &[u8], splitters: &[Key]) -> usize {
    splitters.partition_point(|s| s.as_slice() <= key)
}

/// Groups a flat record buffer by destination partition, returning one
/// contiguous byte buffer per destination (records keep their order within a
/// destination).
///
/// # Panics
///
/// Panics if `buf` is not a whole number of records.
pub fn partition_records(buf: &[u8], splitters: &[Key]) -> Vec<Vec<u8>> {
    assert_eq!(buf.len() % RECORD_BYTES, 0, "ragged record buffer");
    let k = splitters.len() + 1;
    let mut out = vec![Vec::new(); k];
    for rec in buf.chunks_exact(RECORD_BYTES) {
        out[dest_of(&rec[..KEY_BYTES], splitters)].extend_from_slice(rec);
    }
    out
}

/// The global shuffle plan derived from the full `k × k` counts matrix
/// (`counts[i][j]` = records worker `i` sends to partition `j`).
#[derive(Clone, Debug)]
pub struct ShufflePlan {
    counts: Vec<Vec<u64>>,
    /// `base[j]` = first record index of partition `j` in the output.
    base: Vec<u64>,
}

impl ShufflePlan {
    /// Builds the plan.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(counts: Vec<Vec<u64>>) -> ShufflePlan {
        let k = counts.len();
        for row in &counts {
            assert_eq!(row.len(), k, "counts matrix must be square");
        }
        let mut base = Vec::with_capacity(k + 1);
        let mut acc = 0u64;
        for j in 0..k {
            base.push(acc);
            acc += counts.iter().map(|row| row[j]).sum::<u64>();
        }
        base.push(acc);
        ShufflePlan { counts, base }
    }

    /// Total records.
    pub fn total(&self) -> u64 {
        *self.base.last().expect("sentinel")
    }

    /// Record range `[start, end)` of partition `j` in the output.
    pub fn partition_range(&self, j: usize) -> (u64, u64) {
        (self.base[j], self.base[j + 1])
    }

    /// The output record index where worker `i`'s chunk for partition `j`
    /// begins: partition base plus everything earlier workers send there.
    pub fn write_index(&self, i: usize, j: usize) -> u64 {
        self.base[j] + self.counts[..i].iter().map(|row| row[j]).sum::<u64>()
    }

    /// Records worker `i` sends to partition `j`.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> Key {
        [b; KEY_BYTES]
    }

    #[test]
    fn splitters_partition_evenly() {
        let mut sample: Vec<Key> = (0..100u8).map(key).collect();
        let s = choose_splitters(&mut sample, 4);
        assert_eq!(s.len(), 3);
        assert!(s[0] < s[1] && s[1] < s[2]);
        // Each quarter of the sample maps to its own destination.
        assert_eq!(dest_of(&key(0), &s), 0);
        assert_eq!(dest_of(&key(30), &s), 1);
        assert_eq!(dest_of(&key(60), &s), 2);
        assert_eq!(dest_of(&key(99), &s), 3);
    }

    #[test]
    fn dest_of_is_monotone_and_exhaustive() {
        let mut sample: Vec<Key> = (0..=255u8).map(key).collect();
        let s = choose_splitters(&mut sample, 7);
        let mut prev = 0;
        for b in 0..=255u8 {
            let d = dest_of(&key(b), &s);
            assert!(d >= prev && d < 7);
            prev = d;
        }
        assert_eq!(prev, 6, "largest keys reach the last partition");
    }

    #[test]
    fn empty_sample_degenerates() {
        let mut sample = Vec::new();
        let s = choose_splitters(&mut sample, 3);
        assert_eq!(s.len(), 2);
        // All-zero splitters: every non-zero key lands in the last bucket.
        assert_eq!(dest_of(&key(5), &s), 2);
    }

    #[test]
    fn partition_records_preserves_bytes() {
        let recs = workload::teragen(64, 3);
        let mut sample: Vec<Key> = (0..64)
            .map(|i| workload::record_key(&recs, i).try_into().unwrap())
            .collect();
        let s = choose_splitters(&mut sample, 5);
        let parts = partition_records(&recs, &s);
        assert_eq!(parts.len(), 5);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, recs.len());
        // Every record in partition d must indeed route to d.
        for (d, part) in parts.iter().enumerate() {
            for rec in part.chunks_exact(RECORD_BYTES) {
                assert_eq!(dest_of(&rec[..KEY_BYTES], &s), d);
            }
        }
    }

    #[test]
    fn shuffle_plan_offsets_are_disjoint_and_dense() {
        // 3 workers, 3 partitions with irregular counts.
        let counts = vec![vec![2u64, 0, 5], vec![1, 3, 1], vec![0, 4, 2]];
        let plan = ShufflePlan::new(counts);
        assert_eq!(plan.total(), 18);
        assert_eq!(plan.partition_range(0), (0, 3));
        assert_eq!(plan.partition_range(1), (3, 10));
        assert_eq!(plan.partition_range(2), (10, 18));
        // Chunks tile each partition exactly.
        for j in 0..3 {
            let (start, end) = plan.partition_range(j);
            let mut cursor = start;
            for i in 0..3 {
                assert_eq!(plan.write_index(i, j), cursor);
                cursor += plan.count(i, j);
            }
            assert_eq!(cursor, end);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_counts_rejected() {
        ShufflePlan::new(vec![vec![1, 2], vec![3]]);
    }
}
