//! Asynchronous channels for communication between simulated tasks.
//!
//! Two flavours are provided:
//!
//! * [`channel`] — an unbounded multi-producer channel with asynchronous
//!   receive; the workhorse for RPC inboxes and NIC dispatch queues.
//! * [`oneshot`] — a single-value channel used for request/response rendezvous.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ChanState<T> {
    queue: VecDeque<T>,
    waiters: VecDeque<Waker>,
    senders: usize,
    receiver_alive: bool,
}

impl<T> ChanState<T> {
    fn wake_one(&mut self) {
        if let Some(w) = self.waiters.pop_front() {
            w.wake();
        }
    }
    fn wake_all(&mut self) {
        for w in self.waiters.drain(..) {
            w.wake();
        }
    }
}

/// Sending half of an unbounded channel; clonable.
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("queued", &self.state.borrow().queue.len())
            .finish()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("queued", &self.state.borrow().queue.len())
            .finish()
    }
}

/// Error returned by [`Sender::send`] when the receiver has been dropped.
/// The unsent value is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiver was dropped")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Creates a new unbounded channel.
///
/// ```rust
/// use sim::Sim;
/// let sim = Sim::new();
/// let (tx, mut rx) = sim::channel::<u32>();
/// sim.spawn(async move { tx.send(5).unwrap() });
/// let got = sim.block_on(async move { rx.recv().await });
/// assert_eq!(got, Some(5));
/// ```
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        waiters: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: state.clone(),
        },
        Receiver { state },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: self.state.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            st.wake_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.borrow_mut().receiver_alive = false;
    }
}

impl<T> Sender<T> {
    /// Enqueues a value and wakes the receiver.
    ///
    /// # Errors
    ///
    /// Returns the value back inside [`SendError`] if the receiver has been
    /// dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.state.borrow_mut();
        if !st.receiver_alive {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        st.wake_one();
        Ok(())
    }

    /// Returns true if the receiving half is still alive.
    pub fn is_connected(&self) -> bool {
        self.state.borrow().receiver_alive
    }
}

impl<T> Receiver<T> {
    /// Waits for the next value; resolves to `None` once every sender has
    /// been dropped and the queue is empty.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Returns true if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
#[derive(Debug)]
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.rx.state.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(v.into());
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        st.waiters.push_back(cx.waker().clone());
        Poll::Pending
    }
}

// --- oneshot ---------------------------------------------------------------

/// Oneshot channels: a rendezvous carrying exactly one value.
pub mod oneshot {
    use super::*;

    struct OneState<T> {
        value: Option<T>,
        waker: Option<Waker>,
        sender_alive: bool,
    }

    /// Sending half of a oneshot channel.
    pub struct Sender<T> {
        state: Rc<RefCell<OneState<T>>>,
    }

    /// Receiving half of a oneshot channel; a future resolving to the value,
    /// or `None` if the sender was dropped without sending.
    pub struct Receiver<T> {
        state: Rc<RefCell<OneState<T>>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("oneshot::Sender")
        }
    }
    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("oneshot::Receiver")
        }
    }

    /// Creates a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let state = Rc::new(RefCell::new(OneState {
            value: None,
            waker: None,
            sender_alive: true,
        }));
        (
            Sender {
                state: state.clone(),
            },
            Receiver { state },
        )
    }

    impl<T> Sender<T> {
        /// Delivers the value, waking the receiver. Consumes the sender.
        pub fn send(self, value: T) {
            let mut st = self.state.borrow_mut();
            st.value = Some(value);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.state.borrow_mut();
            st.sender_alive = false;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let mut st = self.state.borrow_mut();
            if let Some(v) = st.value.take() {
                return Poll::Ready(Some(v));
            }
            if !st.sender_alive {
                return Poll::Ready(None);
            }
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::time::Duration;

    #[test]
    fn send_before_recv_is_buffered() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let got = sim.block_on(async move { (rx.recv().await, rx.recv().await) });
        assert_eq!(got, (Some(1), Some(2)));
    }

    #[test]
    fn recv_wakes_on_late_send() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<&'static str>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_micros(1)).await;
            tx.send("hello").unwrap();
        });
        let got = sim.block_on(async move { rx.recv().await });
        assert_eq!(got, Some("hello"));
    }

    #[test]
    fn recv_returns_none_when_all_senders_dropped() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        let got = sim.block_on(async move { (rx.recv().await, rx.recv().await) });
        assert_eq!(got, (Some(9), None));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
        assert!(!tx.is_connected());
    }

    #[test]
    fn oneshot_round_trip() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::channel::<u64>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_nanos(50)).await;
            tx.send(99);
        });
        assert_eq!(sim.block_on(rx), Some(99));
    }

    #[test]
    fn oneshot_dropped_sender_yields_none() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::channel::<u64>();
        drop(tx);
        assert_eq!(sim.block_on(rx), None);
    }

    #[test]
    fn multiple_receiver_tasks_each_get_one_value() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let collector = sim.spawn(async move {
            let mut out = Vec::new();
            while let Some(v) = rx.recv().await {
                out.push(v);
            }
            out
        });
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        sim.run();
        assert_eq!(collector.try_result().unwrap(), vec![0, 1, 2, 3]);
    }
}
