//! The simulation executor: tasks, events, and the virtual-time run loop.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

use crate::time::SimTime;
use crate::trace::Tracer;

/// Handle to a running simulation.
///
/// `Sim` is a cheap reference-counted handle; clone it freely and hand clones
/// to every simulated component. All state lives behind a single-threaded
/// `Rc<RefCell<..>>`, which is what makes runs deterministic: there is exactly
/// one runnable entity at any instant.
///
/// The executor interleaves two queues:
///
/// * a FIFO of *ready tasks* (woken futures), all considered to happen at the
///   current virtual instant, and
/// * a priority queue of *events* keyed by `(time, sequence)`; when no task is
///   ready the clock jumps to the earliest event.
///
/// ```rust
/// use sim::{Sim, Duration};
/// let sim = Sim::new();
/// let s2 = sim.clone();
/// sim.spawn(async move { s2.sleep(Duration::from_nanos(10)).await });
/// sim.run();
/// assert_eq!(sim.now().as_nanos(), 10);
/// ```
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        f.debug_struct("Sim")
            .field("now", &core.now)
            .field("pending_events", &core.events.len())
            .field("ready_tasks", &core.ready.len())
            .field("live_tasks", &core.live_tasks)
            .finish()
    }
}

struct Core {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    ready: VecDeque<Rc<Task>>,
    next_task_id: u64,
    live_tasks: usize,
    trace: Rc<RefCell<crate::trace::TraceBuf>>,
    forensics: Rc<RefCell<crate::optrace::ForensicsBuf>>,
}

struct Event {
    at: SimTime,
    seq: u64,
    action: EventAction,
}

enum EventAction {
    Wake(Waker),
    Call(Box<dyn FnOnce()>),
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Task {
    id: u64,
    core: Weak<RefCell<Core>>,
    future: RefCell<Option<Pin<Box<dyn Future<Output = ()>>>>>,
    queued: Cell<bool>,
}

impl Task {
    fn schedule(self: &Rc<Self>) {
        if self.queued.replace(true) {
            return;
        }
        if let Some(core) = self.core.upgrade() {
            core.borrow_mut().ready.push_back(self.clone());
        }
    }
}

impl Drop for Task {
    fn drop(&mut self) {
        // A task dropped before completion (e.g. blocked on a channel whose
        // peer went away) still counts down the live-task gauge.
        if self.future.borrow().is_some() {
            if let Some(core) = self.core.upgrade() {
                core.borrow_mut().live_tasks -= 1;
            }
        }
    }
}

// --- Waker plumbing -------------------------------------------------------
//
// The waker holds an `Rc<Task>`. The executor is strictly single-threaded and
// all futures are `!Send`; wakers never cross threads, so the (unsafe,
// thread-affine) vtable below upholds the `RawWaker` contract in practice.

const VTABLE: RawWakerVTable = RawWakerVTable::new(clone_raw, wake_raw, wake_by_ref_raw, drop_raw);

fn raw_waker(task: Rc<Task>) -> RawWaker {
    RawWaker::new(Rc::into_raw(task) as *const (), &VTABLE)
}

unsafe fn clone_raw(ptr: *const ()) -> RawWaker {
    let task = Rc::from_raw(ptr as *const Task);
    let cloned = task.clone();
    std::mem::forget(task);
    raw_waker(cloned)
}

unsafe fn wake_raw(ptr: *const ()) {
    let task = Rc::from_raw(ptr as *const Task);
    task.schedule();
}

unsafe fn wake_by_ref_raw(ptr: *const ()) {
    let task = Rc::from_raw(ptr as *const Task);
    task.schedule();
    std::mem::forget(task);
}

unsafe fn drop_raw(ptr: *const ()) {
    drop(Rc::from_raw(ptr as *const Task));
}

fn task_waker(task: Rc<Task>) -> Waker {
    // SAFETY: the vtable functions above correctly manage the Rc refcount and
    // the waker is only ever used on the executor thread.
    unsafe { Waker::from_raw(raw_waker(task)) }
}

// --- Join handles ---------------------------------------------------------

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// A handle to a spawned task that resolves to the task's output.
///
/// Awaiting the handle inside another task yields the result once the task
/// finishes; outside the simulation, [`JoinHandle::try_result`] extracts the
/// value after [`Sim::run`] has completed.
///
/// Dropping the handle detaches the task (it keeps running).
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.state.borrow().result.is_some())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Returns the task's output if it has finished, consuming the stored
    /// value. Returns `None` if the task is still pending (or the value was
    /// already taken).
    pub fn try_result(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Returns true once the task has produced its output.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// --- Sleep future ---------------------------------------------------------

/// Future returned by [`Sim::sleep`] and [`Sim::sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.sim.schedule_wake_at(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a new, empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                seq: 0,
                events: BinaryHeap::new(),
                ready: VecDeque::new(),
                next_task_id: 0,
                live_tasks: 0,
                trace: Tracer::new_buf(),
                forensics: crate::optrace::Forensics::new_buf(),
            })),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Returns a handle to this simulation's trace buffer. All handles for
    /// one simulation share state; tracing starts disabled — call
    /// [`Tracer::enable`] to record.
    pub fn tracer(&self) -> Tracer {
        let buf = self.core.borrow().trace.clone();
        let weak = Rc::downgrade(&self.core);
        Tracer::from_parts(
            buf,
            Rc::new(move || {
                weak.upgrade()
                    .map(|core| core.borrow().now)
                    .unwrap_or(SimTime::ZERO)
            }),
        )
    }

    /// Returns a handle to this simulation's per-op forensics registry
    /// (span trees, tail exemplars, flight recorder). All handles for one
    /// simulation share state; forensics start disabled — call
    /// [`crate::optrace::Forensics::enable`] to record.
    pub fn forensics(&self) -> crate::optrace::Forensics {
        let buf = self.core.borrow().forensics.clone();
        let weak = Rc::downgrade(&self.core);
        crate::optrace::Forensics::from_parts(
            buf,
            Rc::new(move || {
                weak.upgrade()
                    .map(|core| core.borrow().now)
                    .unwrap_or(SimTime::ZERO)
            }),
        )
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live_tasks
    }

    /// Spawns a future as a new task and returns a [`JoinHandle`] for its
    /// output. The task starts running at the next executor step.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = state.clone();
        let wrapped = async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        };
        let task = {
            let mut core = self.core.borrow_mut();
            core.next_task_id += 1;
            core.live_tasks += 1;
            Rc::new(Task {
                id: core.next_task_id,
                core: Rc::downgrade(&self.core),
                future: RefCell::new(Some(Box::pin(wrapped))),
                queued: Cell::new(false),
            })
        };
        task.schedule();
        JoinHandle { state }
    }

    /// Sleeps for `d` of virtual time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Sleeps until the given virtual instant (returns immediately if it is
    /// in the past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Schedules `f` to run at `now + delay` as a standalone event (not a
    /// task). Used by lower layers (e.g. the network fabric) to model
    /// hardware actions.
    pub fn schedule<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce() + 'static,
    {
        let at = self.now() + delay;
        self.schedule_at(at, f);
    }

    /// Schedules `f` at an absolute virtual instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce() + 'static,
    {
        let mut core = self.core.borrow_mut();
        assert!(at >= core.now, "cannot schedule into the past");
        core.seq += 1;
        let seq = core.seq;
        core.events.push(Reverse(Event {
            at,
            seq,
            action: EventAction::Call(Box::new(f)),
        }));
    }

    fn schedule_wake_at(&self, at: SimTime, waker: Waker) {
        let mut core = self.core.borrow_mut();
        let at = at.max(core.now);
        core.seq += 1;
        let seq = core.seq;
        core.events.push(Reverse(Event {
            at,
            seq,
            action: EventAction::Wake(waker),
        }));
    }

    /// Runs the simulation until no tasks are runnable and no events remain.
    ///
    /// Returns the final virtual time. Tasks that are still blocked (e.g. on
    /// a channel no one will ever write to) are left pending; inspect
    /// [`Sim::live_tasks`] to detect deadlocks in tests.
    pub fn run(&self) -> SimTime {
        self.run_inner(None)
    }

    /// Runs the simulation, but stops (without firing further events) once
    /// the clock would pass `deadline`. Returns the time at which execution
    /// stopped.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        self.run_inner(Some(deadline))
    }

    /// Spawns `fut` and steps the simulation until the task completes,
    /// returning its output. Unlike [`Sim::run`], this stops as soon as the
    /// future resolves, so it terminates even when perpetual background
    /// tasks (heartbeats, sweeps) keep scheduling events.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs out of events before the future
    /// resolves (i.e. the future deadlocked).
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + 'static,
    {
        let handle = self.spawn(fut);
        loop {
            if let Some(v) = handle.try_result() {
                return v;
            }
            assert!(
                self.step(None),
                "block_on: simulation ran dry before the future resolved"
            );
        }
    }

    /// Executes one unit of work: the next ready task, or — when none is
    /// ready — the earliest event (advancing the clock). Returns `false` if
    /// there was nothing to do, or if the next event lies beyond `deadline`.
    fn step(&self, deadline: Option<SimTime>) -> bool {
        let task = self.core.borrow_mut().ready.pop_front();
        if let Some(task) = task {
            self.poll_task(task);
            return true;
        }
        let action = {
            let mut core = self.core.borrow_mut();
            match core.events.pop() {
                Some(Reverse(ev)) => {
                    if let Some(d) = deadline {
                        if ev.at > d {
                            // Put it back; the caller may resume later.
                            core.events.push(Reverse(ev));
                            core.now = d.max(core.now);
                            return false;
                        }
                    }
                    debug_assert!(ev.at >= core.now, "event time went backwards");
                    core.now = ev.at;
                    ev.action
                }
                None => return false,
            }
        };
        match action {
            EventAction::Wake(w) => w.wake(),
            EventAction::Call(f) => f(),
        }
        true
    }

    fn run_inner(&self, deadline: Option<SimTime>) -> SimTime {
        while self.step(deadline) {}
        self.core.borrow().now
    }

    fn poll_task(&self, task: Rc<Task>) {
        task.queued.set(false);
        // Take the future out so the RefCell is not held across the poll
        // (the future may re-entrantly wake or spawn).
        let fut = task.future.borrow_mut().take();
        let mut fut = match fut {
            Some(f) => f,
            None => return, // already completed
        };
        let waker = task_waker(task.clone());
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.core.borrow_mut().live_tasks -= 1;
                let _ = task.id;
            }
            Poll::Pending => {
                *task.future.borrow_mut() = Some(fut);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn spawn_and_block_on_returns_value() {
        let sim = Sim::new();
        let v = sim.block_on(async { 41 + 1 });
        assert_eq!(v, 42);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.block_on(async move {
            s.sleep(Duration::from_secs(3600)).await;
            s.now()
        });
        assert_eq!(t.as_nanos(), 3600 * 1_000_000_000);
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (10, 'b'), (20, 'x')] {
            let log = log.clone();
            sim.schedule(Duration::from_nanos(delay), move || {
                log.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'x', 'c']);
    }

    #[test]
    fn join_handle_awaits_child() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let child = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(Duration::from_nanos(100)).await;
                    7
                }
            });
            child.await * 3
        });
        assert_eq!(out, 21);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(Duration::from_nanos(1000)).await;
        });
        let stopped = sim.run_until(SimTime::from_nanos(500));
        assert_eq!(stopped.as_nanos(), 500);
        assert!(!h.is_finished());
        sim.run();
        assert!(h.is_finished());
        assert_eq!(sim.now().as_nanos(), 1000);
    }

    #[test]
    fn live_tasks_counts_deadlocked_tasks() {
        let sim = Sim::new();
        let (_tx, mut rx) = channel::<u32>();
        sim.spawn(async move {
            // Never receives anything; _tx is alive in the test scope until
            // `run` returns, so the task stays blocked.
            let _ = rx.recv().await;
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn tasks_at_same_instant_run_fifo() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            sim.spawn(async move { log.borrow_mut().push(i) });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "ran dry")]
    fn block_on_panics_on_deadlock() {
        let sim = Sim::new();
        let (_tx, mut rx) = channel::<u32>();
        sim.block_on(async move {
            rx.recv().await;
        });
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<u64> {
            let sim = Sim::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 1..=10u64 {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(Duration::from_nanos(i * 7 % 5 + 1)).await;
                    log.borrow_mut().push(s.now().as_nanos() * 100 + i);
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
