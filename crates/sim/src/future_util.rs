//! Minimal future combinators (the workspace uses no external futures crate).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Polls a set of futures concurrently and resolves once all have finished,
/// yielding their outputs in input order.
///
/// ```rust
/// use sim::{Sim, Duration, join_all};
/// let sim = Sim::new();
/// let s = sim.clone();
/// let out = sim.block_on(async move {
///     let futs = (1..=3u64).map(|i| {
///         let s = s.clone();
///         async move { s.sleep(Duration::from_nanos(i)).await; i }
///     });
///     join_all(futs).await
/// });
/// assert_eq!(out, vec![1, 2, 3]);
/// ```
pub fn join_all<I>(futures: I) -> JoinAll<<I as IntoIterator>::Item>
where
    I: IntoIterator,
    I::Item: Future,
{
    JoinAll {
        slots: futures
            .into_iter()
            .map(|f| Slot::Pending(Box::pin(f)))
            .collect(),
    }
}

enum Slot<F: Future> {
    Pending(Pin<Box<F>>),
    Done(Option<F::Output>),
}

/// Future returned by [`join_all`].
pub struct JoinAll<F: Future> {
    slots: Vec<Slot<F>>,
}

impl<F: Future> std::fmt::Debug for JoinAll<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinAll")
            .field("total", &self.slots.len())
            .finish()
    }
}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<F::Output>> {
        let this = unsafe { self.get_unchecked_mut() };
        let mut all_done = true;
        for slot in &mut this.slots {
            if let Slot::Pending(f) = slot {
                match f.as_mut().poll(cx) {
                    Poll::Ready(v) => *slot = Slot::Done(Some(v)),
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(
                this.slots
                    .iter_mut()
                    .map(|s| match s {
                        Slot::Done(v) => v.take().expect("output taken twice"),
                        Slot::Pending(_) => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Poll::Pending
        }
    }
}

/// Yields control back to the executor once, letting other tasks runnable at
/// the same virtual instant proceed.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;

    #[test]
    fn join_all_preserves_order_despite_completion_order() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let futs: Vec<_> = [30u64, 10, 20]
                .iter()
                .map(|&d| {
                    let s = s.clone();
                    async move {
                        s.sleep(Duration::from_nanos(d)).await;
                        d
                    }
                })
                .collect();
            join_all(futs).await
        });
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn join_all_empty_is_immediate() {
        let sim = Sim::new();
        let out: Vec<u32> =
            sim.block_on(async move { join_all(Vec::<std::future::Ready<u32>>::new()).await });
        assert!(out.is_empty());
    }

    #[test]
    fn yield_now_interleaves_tasks() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for id in 0..2 {
            let log = log.clone();
            sim.spawn(async move {
                log.borrow_mut().push((id, 0));
                yield_now().await;
                log.borrow_mut().push((id, 1));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }
}
