//! Per-operation cost attribution.
//!
//! The disaggregated-memory literature judges a data-store design by its
//! *communication cost per operation* — round trips, doorbells, wire bytes —
//! not by latency averages alone. An [`OpLedger`] is a lightweight handle
//! created at a client API boundary (`get`, `put`, `read`, `write_ck`, …)
//! and threaded down through the region/KV/RDMA layers, each of which
//! *charges* the costs it incurs:
//!
//! * **RTTs** — posting rounds that awaited at least one completion,
//! * **doorbells** — distinct NIC doorbell rings (batched posts ring once),
//! * **wire bytes** — request bytes incl. headers plus read/atomic response
//!   payload,
//! * **retries / failovers / verify failures** — recovery actions taken,
//! * a **per-layer virtual-time split** — time spent building/posting WRs
//!   (`post`), on the fabric (`wire`), in the simulated NIC/server
//!   (`server`), with the remainder attributed to client logic (`client`).
//!
//! When the ledger is finished the charges are folded into per-op-type
//! histograms and counters under the `ops.<op>.*` namespace of a
//! [`Metrics`] registry, from which [`summarize`] derives deterministic
//! [`OpSummary`] rows (`rtts_per_op` p50/p99/max and friends) for the
//! benchmark JSON and the CI perf gate.
//!
//! Like `sim::trace`, a disabled ledger is free: [`OpLedger::disabled`]
//! holds no allocation and every charge method is a branch on `None`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::metrics::Metrics;
use crate::optrace::OpTrace;
use crate::time::SimTime;

/// Raw cost counters accumulated by one logical operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCosts {
    /// Posting rounds that awaited at least one completion.
    pub rtts: u64,
    /// NIC doorbell rings (a batched post of N WRs rings once).
    pub doorbells: u64,
    /// Wire bytes: request messages incl. headers, plus the response
    /// payload of reads and atomics.
    pub wire_bytes: u64,
    /// Re-posts to the same replica after a transient failure.
    pub retries: u64,
    /// Advances to a different replica after exhausting retries.
    pub failovers: u64,
    /// Checksum verification failures observed while reading.
    pub verify_failures: u64,
    /// Virtual time spent building and posting work requests.
    pub post_ns: u64,
    /// Virtual time attributed to the fabric wire.
    pub wire_ns: u64,
    /// Virtual time attributed to the NIC/server side.
    pub server_ns: u64,
    /// Logical units covered by this op (keys in a `multi_get`); at least 1.
    pub units: u64,
}

/// The layer charging virtual time via [`OpLedger::layer_ns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// WR build + doorbell posting overhead on the client NIC.
    Post,
    /// Fabric transmission time.
    Wire,
    /// NIC processing / server-side time.
    Server,
}

struct Inner {
    metrics: Metrics,
    started: SimTime,
    costs: RefCell<OpCosts>,
    finished: Cell<bool>,
    trace: OpTrace,
}

/// A per-operation cost ledger handle.
///
/// Cheap to clone (an `Option<Rc>`); clones share the same cost
/// accumulator, so a ledger can be handed to concurrently in-flight pieces
/// of the same logical op. Created either enabled via [`OpLedger::start`]
/// or as the free [`OpLedger::disabled`] default.
#[derive(Clone, Default)]
pub struct OpLedger {
    inner: Option<Rc<Inner>>,
}

impl OpLedger {
    /// A ledger that ignores every charge. Free: no allocation, and each
    /// charge is a single branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Starts an enabled ledger for one `op`-type operation at virtual time
    /// `now`. Charges fold into `metrics` under `ops.<op>.*` on
    /// [`OpLedger::finish`].
    pub fn start(metrics: &Metrics, op: &str, now: SimTime) -> Self {
        Self::start_traced(metrics, op, now, OpTrace::disabled())
    }

    /// [`OpLedger::start`] with an attached causal [`OpTrace`]: the trace
    /// rides inside the ledger so every layer holding a ledger clone can
    /// stamp phase spans, and [`OpLedger::finish`] finishes both.
    pub fn start_traced(metrics: &Metrics, op: &str, now: SimTime, trace: OpTrace) -> Self {
        Self {
            inner: Some(Rc::new(Inner {
                metrics: metrics.scoped("ops").scoped(op),
                started: now,
                costs: RefCell::new(OpCosts {
                    units: 1,
                    ..OpCosts::default()
                }),
                finished: Cell::new(false),
                trace,
            })),
        }
    }

    /// The causal trace riding in this ledger ([`OpTrace::disabled`] when
    /// the ledger is disabled or no trace was attached). Cheap to call:
    /// clones an `Option<Rc>`.
    pub fn optrace(&self) -> OpTrace {
        self.inner
            .as_ref()
            .map(|i| i.trace.clone())
            .unwrap_or_default()
    }

    /// True if charges are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn charge(&self, f: impl FnOnce(&mut OpCosts)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.costs.borrow_mut());
        }
    }

    /// Charges one round trip: a posting round that awaited a completion.
    pub fn rtt(&self) {
        self.charge(|c| c.rtts += 1);
    }

    /// Charges one doorbell ring.
    pub fn doorbell(&self) {
        self.charge(|c| c.doorbells += 1);
    }

    /// Charges `bytes` wire bytes.
    pub fn wire(&self, bytes: u64) {
        self.charge(|c| c.wire_bytes += bytes);
    }

    /// Charges one retry (re-post to the same replica).
    pub fn retry(&self) {
        self.charge(|c| c.retries += 1);
    }

    /// Charges one failover (advance to a different replica).
    pub fn failover(&self) {
        self.charge(|c| c.failovers += 1);
    }

    /// Charges one checksum verification failure.
    pub fn verify_failure(&self) {
        self.charge(|c| c.verify_failures += 1);
    }

    /// Charges `ns` of virtual time to `layer`.
    pub fn layer_ns(&self, layer: Layer, ns: u64) {
        self.charge(|c| match layer {
            Layer::Post => c.post_ns += ns,
            Layer::Wire => c.wire_ns += ns,
            Layer::Server => c.server_ns += ns,
        });
    }

    /// Declares this op to cover `units` logical units (e.g. the number of
    /// keys in a `multi_get`), for per-unit rates downstream.
    pub fn set_units(&self, units: u64) {
        self.charge(|c| c.units = units.max(1));
    }

    /// Adds `other`'s accumulated costs into this ledger (without touching
    /// `other`'s units). Used when a sub-operation keeps its own ledger —
    /// e.g. `put` absorbing the CAS it issued — so the parent's totals
    /// still cover the whole logical op.
    pub fn absorb(&self, other: &OpLedger) {
        let Some(other) = &other.inner else { return };
        let o = *other.costs.borrow();
        self.charge(|c| {
            c.rtts += o.rtts;
            c.doorbells += o.doorbells;
            c.wire_bytes += o.wire_bytes;
            c.retries += o.retries;
            c.failovers += o.failovers;
            c.verify_failures += o.verify_failures;
            c.post_ns += o.post_ns;
            c.wire_ns += o.wire_ns;
            c.server_ns += o.server_ns;
        });
    }

    /// Snapshot of the costs charged so far (`None` when disabled).
    pub fn costs(&self) -> Option<OpCosts> {
        self.inner.as_ref().map(|i| *i.costs.borrow())
    }

    /// Folds the accumulated charges into the registry. Idempotent: only
    /// the first call on a given ledger (across all clones) records.
    /// Elapsed virtual time not attributed to post/wire/server is charged
    /// to client logic.
    pub fn finish(&self, now: SimTime) {
        self.finish_with(now, None);
    }

    /// [`OpLedger::finish`] for an op that failed with a structured error:
    /// charges fold identically, and the attached trace (if any) records
    /// `reason`, which makes the forensics registry dump a triage bundle.
    pub fn finish_err(&self, now: SimTime, reason: &'static str) {
        self.finish_with(now, Some(reason));
    }

    fn finish_with(&self, now: SimTime, error: Option<&'static str>) {
        let Some(inner) = &self.inner else { return };
        if inner.finished.replace(true) {
            return;
        }
        inner.trace.finish(now, error);
        let c = *inner.costs.borrow();
        let m = &inner.metrics;
        let elapsed = now.saturating_since(inner.started).as_nanos() as u64;
        let client_ns = elapsed.saturating_sub(c.post_ns + c.wire_ns + c.server_ns);
        m.incr("count");
        m.add("units", c.units);
        m.record_value("rtts", c.rtts);
        m.record_value("doorbells", c.doorbells);
        m.record_value("bytes", c.wire_bytes);
        m.add("retries", c.retries);
        m.add("failovers", c.failovers);
        m.add("verify_failures", c.verify_failures);
        m.add("time.client_ns", client_ns);
        m.add("time.post_ns", c.post_ns);
        m.add("time.wire_ns", c.wire_ns);
        m.add("time.server_ns", c.server_ns);
    }
}

/// Aggregated per-op-type statistics derived from the `ops.*` namespace of
/// a registry. All-integer so experiment stats embedding it stay `Eq`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpSummary {
    /// Operation type (`get`, `put`, `read_ck`, …).
    pub op: String,
    /// Finished operations of this type.
    pub count: u64,
    /// Logical units covered (≥ count; keys for `multi_get`).
    pub units: u64,
    /// Round trips per op: median.
    pub rtts_p50: u64,
    /// Round trips per op: 99th percentile.
    pub rtts_p99: u64,
    /// Round trips per op: maximum.
    pub rtts_max: u64,
    /// Total round trips across all ops of this type.
    pub rtts_total: u64,
    /// Doorbells per op: median.
    pub doorbells_p50: u64,
    /// Doorbells per op: 99th percentile.
    pub doorbells_p99: u64,
    /// Doorbells per op: maximum.
    pub doorbells_max: u64,
    /// Total doorbell rings.
    pub doorbells_total: u64,
    /// Wire bytes per op: median.
    pub bytes_p50: u64,
    /// Wire bytes per op: 99th percentile.
    pub bytes_p99: u64,
    /// Wire bytes per op: maximum.
    pub bytes_max: u64,
    /// Total wire bytes.
    pub bytes_total: u64,
    /// Total retries.
    pub retries: u64,
    /// Total failovers.
    pub failovers: u64,
    /// Total checksum verification failures.
    pub verify_failures: u64,
    /// Virtual time attributed to client logic, summed over ops.
    pub client_ns: u64,
    /// Virtual time attributed to WR build/post, summed over ops.
    pub post_ns: u64,
    /// Virtual time attributed to the fabric wire, summed over ops.
    pub wire_ns: u64,
    /// Virtual time attributed to the NIC/server, summed over ops.
    pub server_ns: u64,
}

/// Derives one [`OpSummary`] per op type recorded in `metrics`, in
/// deterministic (lexicographic) op order.
pub fn summarize(metrics: &Metrics) -> Vec<OpSummary> {
    let mut out = Vec::new();
    for name in metrics.counter_names() {
        let Some(rest) = name.strip_prefix("ops.") else {
            continue;
        };
        let Some(op) = rest.strip_suffix(".count") else {
            continue;
        };
        if op.contains('.') {
            continue;
        }
        let scope = metrics.scoped("ops").scoped(op);
        let hist = |h: &str| scope.histogram(h).unwrap_or_default();
        let rtts = hist("rtts");
        let doorbells = hist("doorbells");
        let bytes = hist("bytes");
        out.push(OpSummary {
            op: op.to_string(),
            count: scope.counter("count"),
            units: scope.counter("units"),
            rtts_p50: rtts.p50(),
            rtts_p99: rtts.p99(),
            rtts_max: rtts.try_percentile(100.0).unwrap_or(0),
            rtts_total: rtts.sum(),
            doorbells_p50: doorbells.p50(),
            doorbells_p99: doorbells.p99(),
            doorbells_max: doorbells.try_percentile(100.0).unwrap_or(0),
            doorbells_total: doorbells.sum(),
            bytes_p50: bytes.p50(),
            bytes_p99: bytes.p99(),
            bytes_max: bytes.try_percentile(100.0).unwrap_or(0),
            bytes_total: bytes.sum(),
            retries: scope.counter("retries"),
            failovers: scope.counter("failovers"),
            verify_failures: scope.counter("verify_failures"),
            client_ns: scope.counter("time.client_ns"),
            post_ns: scope.counter("time.post_ns"),
            wire_ns: scope.counter("time.wire_ns"),
            server_ns: scope.counter("time.server_ns"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_ledger_ignores_all_charges() {
        let l = OpLedger::disabled();
        assert!(!l.enabled());
        l.rtt();
        l.doorbell();
        l.wire(4096);
        l.retry();
        l.failover();
        l.verify_failure();
        l.layer_ns(Layer::Post, 100);
        l.set_units(8);
        l.finish(SimTime::from_nanos(500));
        assert_eq!(l.costs(), None);
        let m = Metrics::new();
        assert!(summarize(&m).is_empty());
    }

    #[test]
    fn charges_fold_into_metrics_on_finish() {
        let m = Metrics::new();
        let l = OpLedger::start(&m, "get", SimTime::from_nanos(1_000));
        assert!(l.enabled());
        l.rtt();
        l.doorbell();
        l.wire(512);
        l.layer_ns(Layer::Post, 150);
        l.layer_ns(Layer::Wire, 400);
        l.layer_ns(Layer::Server, 250);
        l.finish(SimTime::from_nanos(2_000));
        // Idempotent across clones.
        l.clone().finish(SimTime::from_nanos(9_000));
        assert_eq!(m.counter("ops.get.count"), 1);
        assert_eq!(m.counter("ops.get.units"), 1);
        assert_eq!(m.counter("ops.get.time.post_ns"), 150);
        assert_eq!(m.counter("ops.get.time.wire_ns"), 400);
        assert_eq!(m.counter("ops.get.time.server_ns"), 250);
        // 1000 elapsed − 800 attributed = 200 client.
        assert_eq!(m.counter("ops.get.time.client_ns"), 200);
        let s = summarize(&m);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].op, "get");
        assert_eq!(s[0].rtts_p50, 1);
        assert_eq!(s[0].rtts_max, 1);
        assert_eq!(s[0].bytes_total, 512);
        assert_eq!(s[0].doorbells_total, 1);
    }

    #[test]
    fn clones_share_the_accumulator() {
        let m = Metrics::new();
        let l = OpLedger::start(&m, "read", SimTime::ZERO);
        let piece = l.clone();
        piece.rtt();
        piece.wire(100);
        l.rtt();
        let c = l.costs().unwrap();
        assert_eq!(c.rtts, 2);
        assert_eq!(c.wire_bytes, 100);
    }

    #[test]
    fn absorb_adds_sub_op_costs() {
        let m = Metrics::new();
        let put = OpLedger::start(&m, "put", SimTime::ZERO);
        put.rtt();
        put.set_units(3);
        let cas = OpLedger::start(&m, "cas", SimTime::ZERO);
        cas.rtt();
        cas.wire(64);
        cas.finish(SimTime::from_nanos(10));
        put.absorb(&cas);
        let c = put.costs().unwrap();
        assert_eq!(c.rtts, 2);
        assert_eq!(c.wire_bytes, 64);
        // Units are the parent's own.
        assert_eq!(c.units, 3);
        // Absorbing a disabled ledger is a no-op.
        put.absorb(&OpLedger::disabled());
        assert_eq!(put.costs().unwrap().rtts, 2);
        put.finish(SimTime::from_nanos(20));
        let s = summarize(&m);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].op, "cas");
        assert_eq!(s[1].op, "put");
        assert_eq!(s[1].rtts_total, 2);
    }

    #[test]
    fn traced_ledger_finishes_the_trace_with_it() {
        use crate::optrace::{Forensics, ForensicsConfig};
        use std::rc::Rc;
        let f = Forensics::from_parts(Forensics::new_buf(), Rc::new(|| SimTime::ZERO));
        f.enable(ForensicsConfig::default());
        let m = Metrics::new();
        let tr = f.start("get", SimTime::ZERO);
        let l = OpLedger::start_traced(&m, "get", SimTime::ZERO, tr);
        assert!(l.optrace().enabled());
        l.rtt();
        l.finish(SimTime::from_nanos(250));
        assert_eq!(f.finished(), 1);
        assert_eq!(f.ring()[0].elapsed_ns, 250);
        // An error finish on a fresh op dumps a triage bundle.
        let l2 = OpLedger::start_traced(&m, "get", SimTime::ZERO, f.start("get", SimTime::ZERO));
        l2.finish_err(SimTime::from_nanos(990), "timeout");
        assert_eq!(f.failed(), 1);
        assert!(f.last_bundle().is_some());
        // A plain ledger exposes a disabled trace.
        assert!(!OpLedger::start(&m, "put", SimTime::ZERO)
            .optrace()
            .enabled());
        assert!(!OpLedger::disabled().optrace().enabled());
    }

    #[test]
    fn summarize_orders_ops_lexicographically_and_skips_nested() {
        let m = Metrics::new();
        for op in ["write", "get", "multi_get"] {
            let l = OpLedger::start(&m, op, SimTime::ZERO);
            l.rtt();
            l.finish(SimTime::from_nanos(5));
        }
        // A stray nested counter must not create a phantom op type.
        m.add("ops.get.sub.count", 1);
        let names: Vec<String> = summarize(&m).into_iter().map(|s| s.op).collect();
        assert_eq!(names, ["get", "multi_get", "write"]);
    }

    #[test]
    fn histogram_sum_matches_samples() {
        let m = Metrics::new();
        for v in [3u64, 5, 7] {
            m.record("h", Duration::from_nanos(v));
        }
        assert_eq!(m.histogram("h").unwrap().sum(), 15);
        assert_eq!(crate::metrics::Histogram::default().sum(), 0);
    }
}
