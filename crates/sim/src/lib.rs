//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the virtual-time substrate on which the rest of the
//! RStore reproduction runs. Instead of real machines and a real network we
//! execute ordinary Rust `async` code on a single-threaded executor whose
//! clock is *simulated*: awaiting [`Sim::sleep`] does not block the host, it
//! advances a virtual clock to the next scheduled event. Because the executor
//! is single-threaded and every source of ordering is an explicit event with
//! a `(time, sequence)` key, a simulation run is **bit-for-bit deterministic**
//! for a given seed — every latency figure and bandwidth table in the
//! benchmark harness is exactly reproducible.
//!
//! # Example
//!
//! ```rust
//! use sim::{Sim, Duration};
//!
//! let sim = Sim::new();
//! let handle = sim.spawn({
//!     let sim = sim.clone();
//!     async move {
//!         sim.sleep(Duration::from_micros(5)).await;
//!         sim.now()
//!     }
//! });
//! sim.run();
//! let t = handle.try_result().expect("task finished");
//! assert_eq!(t.as_nanos(), 5_000);
//! ```
//!
//! # Modules
//!
//! * [`time`] — the [`SimTime`] virtual clock type.
//! * [`executor`] — the [`Sim`] handle, task spawning, and the run loop.
//! * [`mod@channel`] — unbounded mpsc and oneshot channels usable inside tasks.
//! * [`sync`] — semaphores, barriers and wait groups in virtual time.
//! * [`rng`] — a seeded deterministic random number generator.
//! * [`metrics`] — counters and latency histograms shared between components.
//! * [`ledger`] — per-operation cost attribution (RTTs, doorbells, wire
//!   bytes, per-layer time split; zero-cost when disabled).
//! * [`optrace`] — causal per-op forensics: phase span trees, critical-path
//!   blame vectors, tail exemplars, and a black-box flight recorder
//!   (zero-cost when disabled).
//! * [`trace`] — deterministic span/instant tracing with Chrome-trace export.
//! * [`timeseries`] — windowed counter-delta / percentile sampling on
//!   virtual time (fixed-capacity, zero-cost when disabled).
//! * [`future_util`] — small `join_all` / `yield_now` helpers (no external
//!   futures crate is used anywhere in the workspace).

pub mod channel;
pub mod executor;
pub mod future_util;
pub mod ledger;
pub mod metrics;
pub mod optrace;
pub mod rng;
pub mod sync;
pub mod time;
pub mod timeseries;
pub mod trace;

pub use channel::{channel, oneshot, Receiver, Sender};
pub use executor::{JoinHandle, Sim};
pub use future_util::{join_all, yield_now};
pub use ledger::{Layer, OpCosts, OpLedger, OpSummary};
pub use metrics::{Histogram, Metrics};
pub use optrace::{
    BlameVec, EraNote, Exemplar, FlightRec, Forensics, ForensicsConfig, OpTrace, Phase, SpanRec,
};
pub use rng::DetRng;
pub use time::SimTime;
pub use timeseries::{Sampler, Window, WindowStats};
pub use trace::{Span, TraceEvent, Tracer};

/// Re-export of [`std::time::Duration`]; all simulated delays use it.
pub use std::time::Duration;
