//! Lightweight metrics shared between simulated components.
//!
//! The benchmark harness reads these to build the tables in
//! `EXPERIMENTS.md`: byte counters for bandwidth figures and latency samples
//! for percentile tables.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A clonable handle to a metrics registry.
///
/// Counters are monotonically increasing `u64`s; histograms store raw
/// nanosecond samples (simulations are short enough that exact percentiles
/// are affordable and preferable to bucketed approximations).
///
/// [`Metrics::scoped`] derives a handle that shares the registry but
/// prefixes every name it touches, so per-instance stats (per-link,
/// per-QP) nest under a common namespace:
///
/// ```rust
/// use sim::Metrics;
/// let m = Metrics::new();
/// let link = m.scoped("fabric.link3");
/// link.incr("tx_msgs");
/// assert_eq!(m.counter("fabric.link3.tx_msgs"), 1);
/// ```
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
    /// Dotted namespace prefix (including trailing `.`), if scoped.
    prefix: Option<Rc<str>>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reg = self.inner.borrow();
        f.debug_struct("Metrics")
            .field("counters", &reg.counters.len())
            .field("histograms", &reg.histograms.len())
            .finish()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a handle sharing this registry in which every metric name is
    /// prefixed with `scope` + `.`. Scopes nest: `m.scoped("a").scoped("b")`
    /// writes under `a.b.`.
    ///
    /// Separators are normalised: leading/trailing dots on `scope` are
    /// ignored (so `scoped("a.")` never yields `a..b` names) and an empty
    /// scope is a no-op returning an equivalent handle.
    pub fn scoped(&self, scope: &str) -> Metrics {
        let scope = scope.trim_matches('.');
        if scope.is_empty() {
            return self.clone();
        }
        let prefix = match &self.prefix {
            Some(p) => format!("{p}{scope}."),
            None => format!("{scope}."),
        };
        Metrics {
            inner: self.inner.clone(),
            prefix: Some(prefix.into()),
        }
    }

    /// Resolves `name` against this handle's scope prefix.
    fn qualify<'a>(&self, name: &'a str) -> std::borrow::Cow<'a, str> {
        match &self.prefix {
            Some(p) => std::borrow::Cow::Owned(format!("{p}{name}")),
            None => std::borrow::Cow::Borrowed(name),
        }
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let name = self.qualify(name);
        let mut reg = self.inner.borrow_mut();
        match reg.counters.get_mut(name.as_ref()) {
            Some(c) => *c += delta,
            None => {
                reg.counters.insert(name.into_owned(), delta);
            }
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if it was never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(self.qualify(name).as_ref())
            .copied()
            .unwrap_or(0)
    }

    /// Records a duration sample into the named histogram.
    pub fn record(&self, name: &str, sample: Duration) {
        self.record_value(name, sample.as_nanos() as u64);
    }

    /// Records a raw `u64` sample (queue depth, batch size, …) into the
    /// named histogram.
    pub fn record_value(&self, name: &str, value: u64) {
        let name = self.qualify(name);
        let mut reg = self.inner.borrow_mut();
        reg.histograms
            .entry(name.into_owned())
            .or_default()
            .record(value);
    }

    /// Returns a snapshot of the named histogram, if any samples exist.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .borrow()
            .histograms
            .get(self.qualify(name).as_ref())
            .cloned()
    }

    /// All counter names currently registered (unscoped: the full registry,
    /// regardless of this handle's prefix).
    pub fn counter_names(&self) -> Vec<String> {
        self.inner.borrow().counters.keys().cloned().collect()
    }

    /// All histogram names currently registered (unscoped).
    pub fn histogram_names(&self) -> Vec<String> {
        self.inner.borrow().histograms.keys().cloned().collect()
    }

    /// Resets every counter and histogram (used between benchmark phases).
    pub fn reset(&self) {
        let mut reg = self.inner.borrow_mut();
        reg.counters.clear();
        reg.histograms.clear();
    }
}

/// An exact-sample latency histogram (nanoseconds).
#[derive(Clone, Default, Debug)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Records one nanosecond sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean in nanoseconds (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Exact percentile (`p` in `[0, 100]`) in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is out of range.
    pub fn percentile(&mut self, p: f64) -> u64 {
        assert!(!self.samples.is_empty(), "percentile of empty histogram");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).floor() as usize;
        self.samples[rank]
    }

    /// Exact percentile without mutation or panics: sorts a snapshot of the
    /// samples if needed. Returns `None` if the histogram is empty or `p`
    /// is outside `[0, 100]`.
    pub fn try_percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).floor() as usize;
        if self.sorted {
            return Some(self.samples[rank]);
        }
        let mut snapshot = self.samples.clone();
        snapshot.sort_unstable();
        Some(snapshot[rank])
    }

    /// Median in nanoseconds (zero if empty).
    pub fn p50(&self) -> u64 {
        self.try_percentile(50.0).unwrap_or(0)
    }

    /// 99th percentile in nanoseconds (zero if empty).
    pub fn p99(&self) -> u64 {
        self.try_percentile(99.0).unwrap_or(0)
    }

    /// Raw samples in insertion order (unless [`Histogram::percentile`] has
    /// sorted this instance in place). Registry-held histograms are only ever
    /// appended to, so windowed consumers (e.g. `sim::timeseries`) can slice
    /// `samples()[prev_len..]` to see exactly the samples recorded since a
    /// previous snapshot.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Sum of all samples (zero if empty).
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Minimum sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> u64 {
        *self.samples.iter().min().expect("empty histogram")
    }

    /// Maximum sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> u64 {
        *self.samples.iter().max().expect("empty histogram")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add("bytes", 10);
        m.add("bytes", 32);
        m.incr("ops");
        assert_eq!(m.counter("bytes"), 42);
        assert_eq!(m.counter("ops"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_percentiles_exact() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record("lat", Duration::from_nanos(i));
        }
        let mut h = m.histogram("lat").unwrap();
        assert_eq!(h.len(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(100.0), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.add("a", 5);
        m.record("h", Duration::from_nanos(3));
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("h").is_none());
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.add("x", 7);
        assert_eq!(m.counter("x"), 7);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn percentile_of_empty_panics() {
        Histogram::default().percentile(50.0);
    }

    #[test]
    fn try_percentile_is_total() {
        let empty = Histogram::default();
        assert_eq!(empty.try_percentile(50.0), None);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);

        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record("lat", Duration::from_nanos(i));
        }
        let h = m.histogram("lat").unwrap();
        // Immutable access on an unsorted histogram.
        assert_eq!(h.try_percentile(50.0), Some(50));
        assert_eq!(h.try_percentile(101.0), None);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p99(), 99);
        // Agrees with the sorting accessor.
        let mut hm = h.clone();
        assert_eq!(hm.percentile(99.0), 99);
        assert_eq!(hm.try_percentile(99.0), Some(99));
    }

    #[test]
    fn scoped_handles_prefix_and_share() {
        let m = Metrics::new();
        let link = m.scoped("fabric.link3");
        link.incr("tx_msgs");
        link.add("tx_bytes", 4096);
        link.record("queue_delay", Duration::from_nanos(7));
        assert_eq!(m.counter("fabric.link3.tx_msgs"), 1);
        assert_eq!(m.counter("fabric.link3.tx_bytes"), 4096);
        assert_eq!(link.counter("tx_bytes"), 4096);
        assert_eq!(m.histogram("fabric.link3.queue_delay").unwrap().len(), 1);
        // Nested scoping composes prefixes.
        let qp = m.scoped("rdma").scoped("qp5");
        qp.incr("posted");
        assert_eq!(m.counter("rdma.qp5.posted"), 1);
        // Unscoped name listing sees the fully-qualified names.
        assert!(m.counter_names().contains(&"fabric.link3.tx_msgs".into()));
        // Reset through any handle clears the shared registry.
        qp.reset();
        assert_eq!(m.counter("fabric.link3.tx_msgs"), 0);
    }

    #[test]
    fn scoped_normalises_separators() {
        let m = Metrics::new();
        // Empty scope is a no-op: same registry, same (absent) prefix.
        let same = m.scoped("");
        same.incr("top");
        assert_eq!(m.counter("top"), 1);
        assert!(m.counter_names().contains(&"top".into()));
        // Dots-only scope is also a no-op.
        m.scoped(".").scoped("a").incr("x");
        assert_eq!(m.counter("a.x"), 1);
        // Trailing/leading dots never produce double separators.
        let s = m.scoped("fabric.").scoped(".link2");
        s.incr("tx_msgs");
        assert_eq!(m.counter("fabric.link2.tx_msgs"), 1);
        assert!(m
            .counter_names()
            .iter()
            .all(|n| !n.contains("..") && !n.starts_with('.')));
        // Empty scope on an already-scoped handle keeps the prefix.
        let nested = m.scoped("rdma").scoped("");
        nested.incr("posted");
        assert_eq!(m.counter("rdma.posted"), 1);
    }

    #[test]
    fn histogram_samples_accessor_preserves_insertion_order() {
        let m = Metrics::new();
        for v in [5u64, 1, 9, 3] {
            m.record_value("depth", v);
        }
        let h = m.histogram("depth").unwrap();
        assert_eq!(h.samples(), &[5, 1, 9, 3]);
        // try_percentile does not disturb the stored order.
        assert_eq!(h.try_percentile(100.0), Some(9));
        assert_eq!(h.samples(), &[5, 1, 9, 3]);
    }
}
