//! Lightweight metrics shared between simulated components.
//!
//! The benchmark harness reads these to build the tables in
//! `EXPERIMENTS.md`: byte counters for bandwidth figures and latency samples
//! for percentile tables.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A clonable handle to a metrics registry.
///
/// Counters are monotonically increasing `u64`s; histograms store raw
/// nanosecond samples (simulations are short enough that exact percentiles
/// are affordable and preferable to bucketed approximations).
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reg = self.inner.borrow();
        f.debug_struct("Metrics")
            .field("counters", &reg.counters.len())
            .field("histograms", &reg.histograms.len())
            .finish()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let mut reg = self.inner.borrow_mut();
        match reg.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                reg.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if it was never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Records a duration sample into the named histogram.
    pub fn record(&self, name: &str, sample: Duration) {
        let mut reg = self.inner.borrow_mut();
        reg.histograms
            .entry(name.to_owned())
            .or_default()
            .record(sample.as_nanos() as u64);
    }

    /// Returns a snapshot of the named histogram, if any samples exist.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().histograms.get(name).cloned()
    }

    /// All counter names currently registered.
    pub fn counter_names(&self) -> Vec<String> {
        self.inner.borrow().counters.keys().cloned().collect()
    }

    /// Resets every counter and histogram (used between benchmark phases).
    pub fn reset(&self) {
        let mut reg = self.inner.borrow_mut();
        reg.counters.clear();
        reg.histograms.clear();
    }
}

/// An exact-sample latency histogram (nanoseconds).
#[derive(Clone, Default, Debug)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Records one nanosecond sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean in nanoseconds (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Exact percentile (`p` in `[0, 100]`) in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is out of range.
    pub fn percentile(&mut self, p: f64) -> u64 {
        assert!(!self.samples.is_empty(), "percentile of empty histogram");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).floor() as usize;
        self.samples[rank]
    }

    /// Minimum sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> u64 {
        *self.samples.iter().min().expect("empty histogram")
    }

    /// Maximum sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> u64 {
        *self.samples.iter().max().expect("empty histogram")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add("bytes", 10);
        m.add("bytes", 32);
        m.incr("ops");
        assert_eq!(m.counter("bytes"), 42);
        assert_eq!(m.counter("ops"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_percentiles_exact() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record("lat", Duration::from_nanos(i));
        }
        let mut h = m.histogram("lat").unwrap();
        assert_eq!(h.len(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(100.0), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.add("a", 5);
        m.record("h", Duration::from_nanos(3));
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("h").is_none());
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.add("x", 7);
        assert_eq!(m.counter("x"), 7);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn percentile_of_empty_panics() {
        Histogram::default().percentile(50.0);
    }
}
