//! Causal per-operation forensics: span trees, critical-path blame,
//! tail exemplars, and a black-box flight recorder.
//!
//! The cost ledger ([`crate::ledger`]) answers "what does the *average* op
//! cost"; this module answers "why was *this* op slow". Each logical
//! operation gets an [`OpTrace`] — an op id, a kind, and a virtual-time
//! span tree recording causally-ordered [`Phase`]s (post, doorbell, wire,
//! server residency, CQE settle, retry rounds, lock waits, descriptor
//! revalidation, migration-seal stalls). When the op finishes, a
//! critical-path analyzer reduces the tree to an integer **blame vector**:
//! for every phase, the self-time on the op's path not already explained by
//! a nested phase, with the unattributed remainder charged to client logic.
//!
//! Two consumers sit on top, both owned by the per-simulation
//! [`Forensics`] registry:
//!
//! * **Tail exemplars** — the K slowest ops per kind per virtual-time
//!   window, kept deterministically (ties broken by start time then op id)
//!   with their full span trees, for the `exemplars` block of the benchmark
//!   JSON and the `bench triage` report.
//! * **Flight recorder** — a fixed-size ring of compact records of the most
//!   recently finished ops. When an op finishes with a structured error the
//!   registry dumps a self-contained *triage bundle* (the failing op's full
//!   tree, the ring, recent era notes, and a counter snapshot) as a JSON
//!   document, retrievable via [`Forensics::last_bundle`] and optionally
//!   written to `$RSTORE_TRIAGE_DIR`.
//!
//! Like `trace` and `ledger`, a disabled [`OpTrace`] is free: no
//! allocation, every record call is a branch on `None`. Enabled recording
//! is allocation-free in steady state: span storage is recycled through a
//! pool owned by the registry, so only [`Forensics::start`] and
//! [`OpTrace::finish`] may allocate (the same discipline
//! `tests/trace_overhead.rs` pins for the ledger).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::metrics::Metrics;
use crate::time::SimTime;

/// Number of [`Phase`] variants (the length of a [`BlameVec`]).
pub const NUM_PHASES: usize = 12;

/// Maximum span-tree nesting depth recorded; deeper spans are clamped.
const MAX_OPEN: usize = 16;

/// Spans recorded per op before further records are dropped (counted).
const MAX_SPANS: usize = 8192;

/// Era notes retained for triage bundles before new notes are dropped.
const MAX_ERA_NOTES: usize = 64;

/// A causally-distinct phase of a logical operation's critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// WR build + posting overhead on the client NIC.
    Post = 0,
    /// NIC doorbell ring (instant; recorded as a zero-duration mark).
    Doorbell = 1,
    /// Fabric transmission time.
    Wire = 2,
    /// Simulated NIC / server-side residency.
    Server = 3,
    /// Completion-queue settle: WR resolved but held for in-order release.
    Cqe = 4,
    /// Retry rounds: backoff and re-posting after transient failures.
    Retry = 5,
    /// Failover: advancing to a different replica.
    Failover = 6,
    /// KV slot lock-wait (seqlock held by a concurrent writer).
    LockWait = 7,
    /// Breaking an orphaned KV slot lock via CAS.
    LockBreak = 8,
    /// Descriptor / generation revalidation against the master.
    Reval = 9,
    /// Stall while an extent is sealed for migration or repair.
    Seal = 10,
    /// Client-side logic: elapsed time no other phase explains.
    Client = 11,
}

impl Phase {
    /// Every phase, in blame-vector index order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Post,
        Phase::Doorbell,
        Phase::Wire,
        Phase::Server,
        Phase::Cqe,
        Phase::Retry,
        Phase::Failover,
        Phase::LockWait,
        Phase::LockBreak,
        Phase::Reval,
        Phase::Seal,
        Phase::Client,
    ];

    /// Stable lowercase name used in exports and registry docs.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Post => "post",
            Phase::Doorbell => "doorbell",
            Phase::Wire => "wire",
            Phase::Server => "server",
            Phase::Cqe => "cqe",
            Phase::Retry => "retry",
            Phase::Failover => "failover",
            Phase::LockWait => "lock_wait",
            Phase::LockBreak => "lock_break",
            Phase::Reval => "reval",
            Phase::Seal => "seal",
            Phase::Client => "client",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Integer nanoseconds of critical-path self-time per [`Phase`], indexed by
/// `Phase as usize` (see [`Phase::ALL`]). Sums to the op's elapsed time.
pub type BlameVec = [u64; NUM_PHASES];

/// One recorded span of an op's tree, in preorder; `depth` encodes nesting
/// (a span's parent is the nearest earlier span with a smaller depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// The phase this span attributes time to.
    pub phase: Phase,
    /// Virtual start time, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (0 for marks).
    pub dur_ns: u64,
    /// Nesting depth (0 = root).
    pub depth: u8,
}

/// Compact record of one finished op, as kept by the flight-recorder ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRec {
    /// Monotone per-simulation op id.
    pub id: u64,
    /// Op kind (`"get"`, `"put"`, `"read"`, …).
    pub kind: &'static str,
    /// Virtual start time, nanoseconds.
    pub start_ns: u64,
    /// Total elapsed virtual time, nanoseconds.
    pub elapsed_ns: u64,
    /// Critical-path blame vector (see [`BlameVec`]).
    pub blame: BlameVec,
    /// Number of spans recorded (before any drop cap).
    pub spans: u32,
    /// Structured error reason, if the op failed.
    pub error: Option<&'static str>,
}

/// A tail exemplar: one of the K slowest ops of its kind in its window,
/// with the full span tree retained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Compact summary (id, kind, timing, blame).
    pub rec: FlightRec,
    /// Full span tree, preorder.
    pub spans: Vec<SpanRec>,
    /// Window index (`start_ns / window_ns`).
    pub window: u64,
    /// Rank within its `(kind, window)` bucket (0 = slowest).
    pub rank: usize,
}

/// A cluster-era annotation (fault injected, extent sealed, …) retained for
/// triage bundles so a tail op can be read against cluster history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EraNote {
    /// Virtual time of the note, nanoseconds.
    pub at_ns: u64,
    /// Source layer (`"fabric"`, `"master"`, …).
    pub cat: &'static str,
    /// Note name from the registry table in `EXPERIMENTS.md`.
    pub name: &'static str,
    /// Free payload (node id, extent id, …).
    pub arg: u64,
}

/// Configuration for [`Forensics::enable`].
#[derive(Clone, Copy, Debug)]
pub struct ForensicsConfig {
    /// Exemplar window width in virtual nanoseconds (≥ 1).
    pub window_ns: u64,
    /// Slowest ops kept per kind per window.
    pub k_per_kind: usize,
    /// Flight-recorder ring capacity (finished-op records).
    pub ring: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        ForensicsConfig {
            window_ns: 50_000_000, // 50 ms — matches the timeline experiments
            k_per_kind: 4,
            ring: 64,
        }
    }
}

struct ExRec {
    flight: FlightRec,
    spans: Vec<SpanRec>,
}

/// Exemplar bucket order: slowest first, ties broken by earlier start then
/// smaller op id — fully deterministic because ids are per-sim monotone.
fn ex_order(a: &FlightRec, b: &FlightRec) -> std::cmp::Ordering {
    b.elapsed_ns
        .cmp(&a.elapsed_ns)
        .then(a.start_ns.cmp(&b.start_ns))
        .then(a.id.cmp(&b.id))
}

#[derive(Default)]
pub(crate) struct ForensicsBuf {
    enabled: bool,
    next_op_id: u64,
    window_ns: u64,
    k_per_kind: usize,
    exemplars: BTreeMap<(&'static str, u64), Vec<ExRec>>,
    exemplar_evicted: u64,
    ring: Vec<FlightRec>,
    ring_cap: usize,
    ring_head: usize,
    ring_evicted: u64,
    finished: u64,
    failed: u64,
    bundles: u64,
    last_bundle: Option<String>,
    era_notes: Vec<EraNote>,
    era_dropped: u64,
    span_pool: Vec<Vec<SpanRec>>,
    metrics: Option<Metrics>,
    dump_dir: Option<std::path::PathBuf>,
}

impl ForensicsBuf {
    fn ring_push(&mut self, rec: FlightRec) {
        if self.ring.len() < self.ring_cap {
            self.ring.push(rec);
        } else if self.ring_cap > 0 {
            self.ring[self.ring_head] = rec;
            self.ring_head = (self.ring_head + 1) % self.ring_cap;
            self.ring_evicted += 1;
        }
    }

    fn ring_snapshot(&self) -> Vec<FlightRec> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.ring_head..]);
        out.extend_from_slice(&self.ring[..self.ring_head]);
        out
    }

    fn recycle(&mut self, mut spans: Vec<SpanRec>) {
        spans.clear();
        if self.span_pool.len() < 64 {
            self.span_pool.push(spans);
        }
    }

    fn offer_exemplar(&mut self, flight: FlightRec, spans: Vec<SpanRec>) {
        let window = flight.start_ns / self.window_ns.max(1);
        let k = self.k_per_kind;
        if k == 0 {
            self.recycle(spans);
            return;
        }
        let mut recycled = None;
        let mut evicted = false;
        let list = self.exemplars.entry((flight.kind, window)).or_default();
        let pos = list.partition_point(|e| ex_order(&e.flight, &flight).is_lt());
        if list.len() >= k && pos >= k {
            recycled = Some(spans);
            evicted = true;
        } else {
            if list.len() >= k {
                recycled = Some(list.pop().expect("k > 0").spans);
                evicted = true;
            }
            list.insert(pos, ExRec { flight, spans });
        }
        if evicted {
            self.exemplar_evicted += 1;
        }
        if let Some(v) = recycled {
            self.recycle(v);
        }
    }

    /// Renders the self-contained triage bundle for a failing op.
    fn render_bundle(&self, flight: &FlightRec, spans: &[SpanRec]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\": \"rstore-triage-v1\", \"reason\": ");
        crate::trace::push_escaped(&mut out, flight.error.unwrap_or("unknown"));
        let _ = write!(out, ", \"bundle_seq\": {},\n \"op\": ", self.bundles);
        push_flight(&mut out, flight);
        out.push_str(",\n \"spans\": [");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"phase\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}, \"depth\": {}}}",
                s.phase.name(),
                s.start_ns,
                s.dur_ns,
                s.depth
            );
        }
        out.push_str("],\n \"ring\": [");
        for (i, r) in self.ring_snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            push_flight(&mut out, r);
        }
        let _ = write!(out, "],\n \"era_notes_dropped\": {}, ", self.era_dropped);
        out.push_str("\"era_notes\": [");
        for (i, n) in self.era_notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"at_ns\": {}, \"cat\": \"{}\", \"name\": \"{}\", \"arg\": {}}}",
                n.at_ns, n.cat, n.name, n.arg
            );
        }
        out.push_str("],\n \"gauges\": {");
        if let Some(m) = &self.metrics {
            for (i, name) in m.counter_names().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('\n');
                out.push(' ');
                crate::trace::push_escaped(&mut out, name);
                let _ = write!(out, ": {}", m.counter(name));
            }
        }
        out.push_str("}}\n");
        out
    }
}

/// Writes one [`FlightRec`] as a JSON object (blame keyed by phase name).
fn push_flight(out: &mut String, r: &FlightRec) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"id\": {}, \"kind\": \"{}\", \"start_ns\": {}, \"elapsed_ns\": {}, \"spans\": {}, \"error\": ",
        r.id, r.kind, r.start_ns, r.elapsed_ns, r.spans
    );
    match r.error {
        Some(e) => crate::trace::push_escaped(out, e),
        None => out.push_str("null"),
    }
    out.push_str(", \"blame\": {");
    for (i, p) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", p.name(), r.blame[p.idx()]);
    }
    out.push_str("}}");
}

struct OpState {
    spans: Vec<SpanRec>,
    open: [u32; MAX_OPEN],
    open_len: u8,
    dropped: u32,
}

struct OpInner {
    buf: Rc<RefCell<ForensicsBuf>>,
    id: u64,
    kind: &'static str,
    started: SimTime,
    state: RefCell<OpState>,
    finished: Cell<bool>,
}

/// Token for an open span returned by [`OpTrace::begin`]; pass it back to
/// [`OpTrace::end`]. Inert when the trace is disabled.
#[derive(Clone, Copy, Debug)]
#[must_use = "a begun span should be ended with OpTrace::end"]
pub struct SpanToken(u32);

const DEAD_TOKEN: SpanToken = SpanToken(u32::MAX);

/// Handle to one logical op's span tree.
///
/// Cheap to clone (an `Option<Rc>`); clones share the tree, so the handle
/// rides inside the [`crate::OpLedger`] captured by in-flight work
/// requests. All record methods take explicit virtual times so the hot
/// paths need no clock access; the disabled default records nothing and
/// never allocates.
#[derive(Clone, Default)]
pub struct OpTrace {
    inner: Option<Rc<OpInner>>,
}

impl OpTrace {
    /// A trace that ignores every record call. Free: no allocation, each
    /// call is a branch.
    pub fn disabled() -> Self {
        OpTrace { inner: None }
    }

    /// True if spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The per-simulation op id (0 when disabled).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// Opens a span of `phase` at `now`; close it with [`OpTrace::end`].
    /// Spans opened while another is open become its children.
    pub fn begin(&self, phase: Phase, now: SimTime) -> SpanToken {
        let Some(inner) = &self.inner else {
            return DEAD_TOKEN;
        };
        let mut st = inner.state.borrow_mut();
        if st.spans.len() >= MAX_SPANS {
            st.dropped += 1;
            return DEAD_TOKEN;
        }
        let depth = st.open_len.min(MAX_OPEN as u8 - 1);
        let idx = st.spans.len() as u32;
        st.spans.push(SpanRec {
            phase,
            start_ns: now.as_nanos(),
            dur_ns: 0,
            depth,
        });
        if (st.open_len as usize) < MAX_OPEN {
            let at = st.open_len as usize;
            st.open[at] = idx;
            st.open_len += 1;
        }
        SpanToken(idx)
    }

    /// Closes the span opened by `token`, stamping its duration.
    pub fn end(&self, token: SpanToken, now: SimTime) {
        let Some(inner) = &self.inner else { return };
        if token.0 == u32::MAX {
            return;
        }
        let mut st = inner.state.borrow_mut();
        let idx = token.0 as usize;
        if let Some(s) = st.spans.get_mut(idx) {
            s.dur_ns = now.as_nanos().saturating_sub(s.start_ns);
        }
        // Pop the open stack down past this span (spans close LIFO; anything
        // above a span being closed is already logically closed).
        while st.open_len > 0 && st.open[st.open_len as usize - 1] >= token.0 {
            st.open_len -= 1;
        }
    }

    /// Records an instant mark of `phase` (a zero-duration span) at `now`.
    pub fn mark(&self, phase: Phase, now: SimTime) {
        let ns = now.as_nanos();
        self.span_ns(phase, ns, 0);
    }

    /// Records a completed span of `phase` from `start` to `end`,
    /// retroactively. It nests under whatever span is currently open.
    pub fn span_at(&self, phase: Phase, start: SimTime, end: SimTime) {
        self.span_ns(
            phase,
            start.as_nanos(),
            end.saturating_since(start).as_nanos() as u64,
        );
    }

    /// [`OpTrace::span_at`] with raw nanosecond start/duration, for callers
    /// that already carved an elapsed interval into per-phase shares.
    pub fn span_ns(&self, phase: Phase, start_ns: u64, dur_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.borrow_mut();
        if st.spans.len() >= MAX_SPANS {
            st.dropped += 1;
            return;
        }
        let depth = st.open_len.min(MAX_OPEN as u8);
        st.spans.push(SpanRec {
            phase,
            start_ns,
            dur_ns,
            depth,
        });
    }

    /// Number of spans recorded so far (0 when disabled).
    pub fn span_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.state.borrow().spans.len())
    }

    /// Finishes the op at `now`: computes the blame vector, files the op
    /// with the flight recorder and exemplar reservoir, and — when `error`
    /// is set — makes the registry dump a triage bundle. Idempotent across
    /// clones; only the first call records.
    pub fn finish(&self, now: SimTime, error: Option<&'static str>) {
        let Some(inner) = &self.inner else { return };
        if inner.finished.replace(true) {
            return;
        }
        let started_ns = inner.started.as_nanos();
        let elapsed = now.saturating_since(inner.started).as_nanos() as u64;
        let mut st = inner.state.borrow_mut();
        let spans = std::mem::take(&mut st.spans);
        let span_count = spans.len() as u32 + st.dropped;
        drop(st);
        let blame = analyze(&spans, elapsed);
        let flight = FlightRec {
            id: inner.id,
            kind: inner.kind,
            start_ns: started_ns,
            elapsed_ns: elapsed,
            blame,
            spans: span_count,
            error,
        };
        let mut buf = inner.buf.borrow_mut();
        buf.finished += 1;
        if error.is_some() {
            buf.failed += 1;
        }
        if let Some(m) = &buf.metrics {
            m.incr("optrace.finished");
            if error.is_some() {
                m.incr("optrace.failed");
            }
        }
        if error.is_some() {
            buf.bundles += 1;
            let bundle = buf.render_bundle(&flight, &spans);
            if let Some(dir) = &buf.dump_dir {
                let file = format!(
                    "triage-{:04}-{}-op{}.json",
                    buf.bundles, inner.kind, inner.id
                );
                let _ = std::fs::write(dir.join(file), &bundle);
            }
            if let Some(m) = &buf.metrics {
                m.incr("optrace.bundles");
            }
            buf.last_bundle = Some(bundle);
        }
        buf.ring_push(flight);
        buf.offer_exemplar(flight, spans);
    }
}

/// Reduces a preorder span list to a blame vector: each span's self-time
/// (duration minus nested children) is charged to its phase, and elapsed
/// time not covered by any root span is charged to [`Phase::Client`].
fn analyze(spans: &[SpanRec], elapsed_ns: u64) -> BlameVec {
    let mut blame = [0u64; NUM_PHASES];
    // (span index, child duration sum) — depth is clamped ≤ MAX_OPEN so a
    // fixed stack suffices and finish stays allocation-free for the tree
    // walk itself.
    let mut stack = [(0usize, 0u64); MAX_OPEN + 1];
    let mut sp = 0usize;
    let mut root_sum = 0u64;
    let mut close_top = |stack: &mut [(usize, u64)], sp: &mut usize, root: &mut u64| {
        *sp -= 1;
        let (idx, child) = stack[*sp];
        let s = &spans[idx];
        blame[s.phase.idx()] += s.dur_ns.saturating_sub(child);
        if *sp > 0 {
            stack[*sp - 1].1 += s.dur_ns;
        } else {
            *root += s.dur_ns;
        }
    };
    for (i, s) in spans.iter().enumerate() {
        let d = (s.depth as usize).min(MAX_OPEN);
        while sp > d {
            close_top(&mut stack, &mut sp, &mut root_sum);
        }
        stack[sp] = (i, 0);
        sp += 1;
    }
    while sp > 0 {
        close_top(&mut stack, &mut sp, &mut root_sum);
    }
    blame[Phase::Client.idx()] += elapsed_ns.saturating_sub(root_sum);
    blame
}

/// Clonable handle to the simulation's forensics registry.
///
/// Obtain one with [`crate::Sim::forensics`]; all clones for a given
/// simulation share state. Forensics start disabled — call
/// [`Forensics::enable`] to record.
#[derive(Clone)]
pub struct Forensics {
    buf: Rc<RefCell<ForensicsBuf>>,
    clock: Rc<dyn Fn() -> SimTime>,
}

impl std::fmt::Debug for Forensics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buf = self.buf.borrow();
        f.debug_struct("Forensics")
            .field("enabled", &buf.enabled)
            .field("finished", &buf.finished)
            .field("failed", &buf.failed)
            .finish()
    }
}

impl Forensics {
    pub(crate) fn from_parts(
        buf: Rc<RefCell<ForensicsBuf>>,
        clock: Rc<dyn Fn() -> SimTime>,
    ) -> Self {
        Forensics { buf, clock }
    }

    pub(crate) fn new_buf() -> Rc<RefCell<ForensicsBuf>> {
        Rc::new(RefCell::new(ForensicsBuf::default()))
    }

    /// Starts recording with `cfg`, clearing any previous state. When the
    /// `RSTORE_TRIAGE_DIR` environment variable is set, triage bundles are
    /// additionally written there as JSON files.
    pub fn enable(&self, cfg: ForensicsConfig) {
        let dump_dir = std::env::var_os("RSTORE_TRIAGE_DIR").map(std::path::PathBuf::from);
        if let Some(dir) = &dump_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut buf = self.buf.borrow_mut();
        *buf = ForensicsBuf {
            enabled: true,
            window_ns: cfg.window_ns.max(1),
            k_per_kind: cfg.k_per_kind,
            ring: Vec::with_capacity(cfg.ring),
            ring_cap: cfg.ring,
            era_notes: Vec::with_capacity(MAX_ERA_NOTES),
            dump_dir,
            ..ForensicsBuf::default()
        };
    }

    /// Stops recording (collected state stays readable).
    pub fn disable(&self) {
        self.buf.borrow_mut().enabled = false;
    }

    /// True while recording.
    pub fn is_enabled(&self) -> bool {
        self.buf.borrow().enabled
    }

    /// Attaches a metrics registry: finished/failed/bundle counts are
    /// mirrored as `optrace.*` counters and triage bundles embed a snapshot
    /// of all counters.
    pub fn attach_metrics(&self, metrics: &Metrics) {
        self.buf.borrow_mut().metrics = Some(metrics.clone());
    }

    /// Starts a trace for one `kind` op at `now`. Returns the free
    /// [`OpTrace::disabled`] when forensics are off.
    pub fn start(&self, kind: &'static str, now: SimTime) -> OpTrace {
        let mut buf = self.buf.borrow_mut();
        if !buf.enabled {
            return OpTrace::disabled();
        }
        buf.next_op_id += 1;
        let id = buf.next_op_id;
        let spans = buf.span_pool.pop().unwrap_or_default();
        drop(buf);
        OpTrace {
            inner: Some(Rc::new(OpInner {
                buf: self.buf.clone(),
                id,
                kind,
                started: now,
                state: RefCell::new(OpState {
                    spans,
                    open: [0; MAX_OPEN],
                    open_len: 0,
                    dropped: 0,
                }),
                finished: Cell::new(false),
            })),
        }
    }

    /// Records a cluster-era note (fault injected, extent sealed, …) at the
    /// current virtual time, kept (bounded) for triage bundles.
    pub fn note(&self, cat: &'static str, name: &'static str, arg: u64) {
        let mut buf = self.buf.borrow_mut();
        if !buf.enabled {
            return;
        }
        if buf.era_notes.len() >= MAX_ERA_NOTES {
            buf.era_dropped += 1;
            return;
        }
        let at_ns = (self.clock)().as_nanos();
        buf.era_notes.push(EraNote {
            at_ns,
            cat,
            name,
            arg,
        });
    }

    /// All retained exemplars, deterministically ordered by kind, then
    /// window, then rank (slowest first).
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let buf = self.buf.borrow();
        let mut out = Vec::new();
        for ((_, window), list) in buf.exemplars.iter() {
            for (rank, e) in list.iter().enumerate() {
                out.push(Exemplar {
                    rec: e.flight,
                    spans: e.spans.clone(),
                    window: *window,
                    rank,
                });
            }
        }
        out
    }

    /// Flight-recorder contents, oldest first.
    pub fn ring(&self) -> Vec<FlightRec> {
        self.buf.borrow().ring_snapshot()
    }

    /// Era notes retained so far.
    pub fn era_notes(&self) -> Vec<EraNote> {
        self.buf.borrow().era_notes.clone()
    }

    /// Ops finished (with or without error).
    pub fn finished(&self) -> u64 {
        self.buf.borrow().finished
    }

    /// Ops finished with a structured error.
    pub fn failed(&self) -> u64 {
        self.buf.borrow().failed
    }

    /// Triage bundles produced.
    pub fn bundles(&self) -> u64 {
        self.buf.borrow().bundles
    }

    /// The most recent triage bundle, if any op has failed.
    pub fn last_bundle(&self) -> Option<String> {
        self.buf.borrow().last_bundle.clone()
    }

    /// Flight-recorder records evicted by ring wraparound.
    pub fn ring_evicted(&self) -> u64 {
        self.buf.borrow().ring_evicted
    }

    /// Exemplar candidates dropped because their bucket was full of slower
    /// ops.
    pub fn exemplar_evicted(&self) -> u64 {
        self.buf.borrow().exemplar_evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn forensics() -> Forensics {
        Forensics::from_parts(Forensics::new_buf(), Rc::new(|| SimTime::ZERO))
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let tr = OpTrace::disabled();
        assert!(!tr.enabled());
        let tok = tr.begin(Phase::Wire, t(0));
        tr.end(tok, t(10));
        tr.mark(Phase::Doorbell, t(5));
        tr.span_ns(Phase::Post, 0, 10);
        tr.finish(t(100), Some("timeout"));
        assert_eq!(tr.span_count(), 0);
        let f = forensics();
        assert!(!f.is_enabled());
        assert!(!f.start("get", t(0)).enabled());
        f.note("fabric", "fault.crash", 1);
        assert!(f.era_notes().is_empty());
        assert_eq!(f.finished(), 0);
    }

    #[test]
    fn blame_charges_self_time_and_client_residual() {
        let f = forensics();
        f.enable(ForensicsConfig::default());
        let tr = f.start("get", t(1_000));
        // Root retry span 1000..1900 with nested wire 1100..1400 and
        // server 1400..1600; separate root post span 1900..1950.
        let retry = tr.begin(Phase::Retry, t(1_000));
        tr.span_at(Phase::Wire, t(1_100), t(1_400));
        tr.span_at(Phase::Server, t(1_400), t(1_600));
        tr.end(retry, t(1_900));
        tr.span_at(Phase::Post, t(1_900), t(1_950));
        tr.finish(t(2_000), None);
        let ring = f.ring();
        assert_eq!(ring.len(), 1);
        let b = ring[0].blame;
        assert_eq!(b[Phase::Wire.idx()], 300);
        assert_eq!(b[Phase::Server.idx()], 200);
        // Retry self-time: 900 − 300 − 200.
        assert_eq!(b[Phase::Retry.idx()], 400);
        assert_eq!(b[Phase::Post.idx()], 50);
        // Elapsed 1000 − roots (900 + 50) = 50 client.
        assert_eq!(b[Phase::Client.idx()], 50);
        assert_eq!(b.iter().sum::<u64>(), 1_000);
        assert_eq!(ring[0].spans, 4);
    }

    #[test]
    fn exemplars_keep_k_slowest_deterministically() {
        let f = forensics();
        f.enable(ForensicsConfig {
            window_ns: 1_000_000,
            k_per_kind: 2,
            ring: 4,
        });
        for (start, dur) in [(0u64, 100u64), (10, 500), (20, 300), (30, 500)] {
            let tr = f.start("get", t(start));
            tr.finish(t(start + dur), None);
        }
        let ex = f.exemplars();
        assert_eq!(ex.len(), 2);
        // Two ops tie at 500 ns; the earlier start wins rank 0.
        assert_eq!(ex[0].rec.elapsed_ns, 500);
        assert_eq!(ex[0].rec.start_ns, 10);
        assert_eq!(ex[0].rank, 0);
        assert_eq!(ex[1].rec.elapsed_ns, 500);
        assert_eq!(ex[1].rec.start_ns, 30);
        assert_eq!(f.exemplar_evicted(), 2);
    }

    #[test]
    fn flight_ring_wraps_and_keeps_newest() {
        let f = forensics();
        f.enable(ForensicsConfig {
            window_ns: 1_000,
            k_per_kind: 1,
            ring: 2,
        });
        for i in 0..5u64 {
            let tr = f.start("put", t(i * 10));
            tr.finish(t(i * 10 + 1), None);
        }
        let ring = f.ring();
        assert_eq!(ring.len(), 2);
        assert_eq!(f.ring_evicted(), 3);
        assert_eq!(ring[0].id, 4);
        assert_eq!(ring[1].id, 5);
    }

    #[test]
    fn error_finish_produces_a_bundle_with_ring_and_notes() {
        let f = forensics();
        f.enable(ForensicsConfig::default());
        f.note("fabric", "fault.crash", 3);
        let ok = f.start("get", t(0));
        ok.finish(t(10), None);
        let bad = f.start("get", t(20));
        let tok = bad.begin(Phase::Retry, t(20));
        bad.end(tok, t(90));
        bad.finish(t(100), Some("timeout"));
        assert_eq!(f.failed(), 1);
        assert_eq!(f.bundles(), 1);
        let bundle = f.last_bundle().expect("bundle");
        assert!(bundle.contains("\"schema\": \"rstore-triage-v1\""));
        assert!(bundle.contains("\"reason\": \"timeout\""));
        assert!(bundle.contains("\"phase\": \"retry\""));
        assert!(bundle.contains("fault.crash"));
        // The ring snapshot includes the earlier successful op.
        assert!(bundle.contains("\"id\": 1"));
    }

    #[test]
    fn bundles_are_dumped_to_the_triage_dir_when_configured() {
        let dir = std::env::temp_dir().join(format!("rstore_triage_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The env var is sampled once, at enable(); restore it right after
        // so concurrently-enabling tests observe it for at most a moment.
        std::env::set_var("RSTORE_TRIAGE_DIR", &dir);
        let f = forensics();
        f.enable(ForensicsConfig::default());
        std::env::remove_var("RSTORE_TRIAGE_DIR");

        let tr = f.start("put", t(0));
        let tok = tr.begin(Phase::Retry, t(0));
        tr.end(tok, t(900));
        tr.finish(t(1_000), Some("corruption"));

        // Deterministic artifact name: bundle seq, kind, op id.
        let path = dir.join("triage-0001-put-op1.json");
        let on_disk = std::fs::read_to_string(&path).expect("bundle file must exist");
        assert_eq!(
            Some(on_disk.as_str()),
            f.last_bundle().as_deref(),
            "file dump and in-memory bundle must match"
        );
        assert!(on_disk.contains("\"schema\": \"rstore-triage-v1\""));
        assert!(on_disk.contains("\"reason\": \"corruption\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_is_idempotent_across_clones() {
        let f = forensics();
        f.enable(ForensicsConfig::default());
        let tr = f.start("get", t(0));
        let clone = tr.clone();
        tr.finish(t(50), None);
        clone.finish(t(999), Some("timeout"));
        assert_eq!(f.finished(), 1);
        assert_eq!(f.failed(), 0);
        assert_eq!(f.ring().len(), 1);
        assert_eq!(f.ring()[0].elapsed_ns, 50);
    }

    #[test]
    fn steady_state_reuses_pooled_span_storage() {
        let f = forensics();
        f.enable(ForensicsConfig {
            window_ns: 1,
            k_per_kind: 0,
            ring: 1,
        });
        // With k = 0 every op's span vec returns to the pool; the second op
        // reuses the first one's storage.
        let a = f.start("get", t(0));
        a.span_ns(Phase::Wire, 0, 5);
        a.finish(t(5), None);
        let b = f.start("get", t(10));
        b.span_ns(Phase::Wire, 10, 5);
        assert_eq!(b.span_count(), 1);
        b.finish(t(15), None);
        assert_eq!(f.finished(), 2);
    }

    #[test]
    fn era_notes_are_bounded() {
        let f = forensics();
        f.enable(ForensicsConfig::default());
        for i in 0..(MAX_ERA_NOTES as u64 + 10) {
            f.note("fabric", "fault.loss", i);
        }
        assert_eq!(f.era_notes().len(), MAX_ERA_NOTES);
    }
}
