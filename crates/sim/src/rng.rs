//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (workload generators,
//! allocation policies, sampling) draws from a [`DetRng`] created from an
//! explicit seed, so two runs with the same seed produce identical traces.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A seeded, deterministic random number generator.
///
/// Thin wrapper around a fixed algorithm (`SmallRng`) so that the choice of
/// algorithm — and therefore the exact stream — is pinned by this crate
/// rather than by whichever `rand` version is in the lockfile surface API.
///
/// ```rust
/// use sim::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl fmt::Debug for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetRng").field("seed", &self.seed).finish()
    }
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent child generator; use to give each simulated
    /// component its own stream (`rng.fork(node_id)`).
    pub fn fork(&self, salt: u64) -> DetRng {
        DetRng::new(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
    }

    /// Next uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let base = DetRng::new(9);
        let mut c1 = base.fork(4);
        let mut c2 = base.fork(4);
        let mut c3 = base.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(8);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).range_u64(5, 5);
    }
}
