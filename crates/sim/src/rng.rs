//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (workload generators,
//! allocation policies, sampling) draws from a [`DetRng`] created from an
//! explicit seed, so two runs with the same seed produce identical traces.

use std::fmt;

/// A seeded, deterministic random number generator.
///
/// Thin wrapper around a fixed algorithm (xoshiro256++ seeded via SplitMix64,
/// implemented in this crate) so that the exact stream is pinned by this
/// crate rather than by an external dependency — the workspace builds with no
/// crates.io packages at all.
///
/// ```rust
/// use sim::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct DetRng {
    state: [u64; 4],
    seed: u64,
}

impl fmt::Debug for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetRng").field("seed", &self.seed).finish()
    }
}

/// SplitMix64 step, used to expand the 64-bit seed into the 256-bit state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state, seed }
    }

    /// Derives an independent child generator; use to give each simulated
    /// component its own stream (`rng.fork(node_id)`).
    pub fn fork(&self, salt: u64) -> DetRng {
        DetRng::new(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
    }

    /// Next uniformly random `u64` (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): rejection keeps the draw uniform.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (span as u128);
            if (wide as u64) >= threshold {
                return lo + (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform float in `[0, 1)` (53 random bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let base = DetRng::new(9);
        let mut c1 = base.fork(4);
        let mut c2 = base.fork(4);
        let mut c3 = base.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::new(17);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(8);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 bytes from a seeded stream: overwhelmingly unlikely to be all
        // zero unless fill_bytes skipped the tail.
        assert!(buf.iter().any(|&b| b != 0));
        let mut tail = [0u8; 3];
        let mut r2 = DetRng::new(11);
        r2.fill_bytes(&mut tail);
        assert!(tail.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).range_u64(5, 5);
    }
}
