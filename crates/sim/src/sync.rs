//! Synchronization primitives operating in virtual time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// --- Semaphore --------------------------------------------------------------

struct SemState {
    permits: usize,
    waiters: VecDeque<Waker>,
}

/// A counting semaphore for limiting concurrency between simulated tasks
/// (e.g. bounding the number of outstanding work requests on a queue pair).
///
/// Permits are acquired with [`Semaphore::acquire`] and returned explicitly
/// with [`Semaphore::release`] — no RAII guard is used, because simulated
/// NIC pipelines often release a permit from a completion handler rather
/// than from the acquiring task.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("permits", &self.state.borrow().permits)
            .field("waiters", &self.state.borrow().waiters.len())
            .finish()
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Waits until a permit is available and takes it.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            queued: false,
        }
    }

    /// Attempts to take a permit without waiting.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.borrow_mut();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Returns a permit, waking one waiter if any.
    pub fn release(&self) {
        let mut st = self.state.borrow_mut();
        st.permits += 1;
        if let Some(w) = st.waiters.pop_front() {
            w.wake();
        }
    }

    /// Current number of free permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
#[derive(Debug)]
pub struct Acquire {
    sem: Semaphore,
    queued: bool,
}

impl Future for Acquire {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.sem.state.borrow_mut();
        if st.permits > 0 {
            st.permits -= 1;
            Poll::Ready(())
        } else {
            // Re-register each poll; the queue may hold stale wakers for this
            // future, which is harmless (spurious wakeups re-check permits).
            st.waiters.push_back(cx.waker().clone());
            drop(st);
            self.queued = true;
            Poll::Pending
        }
    }
}

// --- Barrier -----------------------------------------------------------------

struct BarrierState {
    n: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<Waker>,
}

/// A reusable barrier for superstep-style coordination (graph supersteps,
/// sort phases). All `n` participants must call [`Barrier::wait`] before any
/// of them proceeds; the barrier then resets for the next round.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

impl fmt::Debug for Barrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Barrier")
            .field("n", &st.n)
            .field("arrived", &st.arrived)
            .field("generation", &st.generation)
            .finish()
    }
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier must have at least one participant");
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                n,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrives at the barrier and waits for the rest of the group.
    ///
    /// Resolves to `true` for exactly one participant per round (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            arrived_gen: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
#[derive(Debug)]
pub struct BarrierWait {
    barrier: Barrier,
    arrived_gen: Option<(u64, bool)>,
}

impl Future for BarrierWait {
    type Output = bool;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let mut st = self.barrier.state.borrow_mut();
        match self.arrived_gen {
            None => {
                st.arrived += 1;
                if st.arrived == st.n {
                    st.arrived = 0;
                    st.generation += 1;
                    for w in st.waiters.drain(..) {
                        w.wake();
                    }
                    Poll::Ready(true)
                } else {
                    let gen = st.generation;
                    st.waiters.push(cx.waker().clone());
                    drop(st);
                    self.arrived_gen = Some((gen, false));
                    Poll::Pending
                }
            }
            Some((gen, _)) => {
                if st.generation != gen {
                    Poll::Ready(false)
                } else {
                    st.waiters.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

// --- WaitGroup ----------------------------------------------------------------

struct WgState {
    count: usize,
    waiters: Vec<Waker>,
}

/// A Go-style wait group: tracks a count of outstanding operations and lets
/// tasks wait until the count drops to zero (e.g. "all outstanding one-sided
/// writes have completed").
#[derive(Clone)]
pub struct WaitGroup {
    state: Rc<RefCell<WgState>>,
}

impl fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitGroup")
            .field("count", &self.state.borrow().count)
            .finish()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    /// Creates an empty wait group.
    pub fn new() -> Self {
        WaitGroup {
            state: Rc::new(RefCell::new(WgState {
                count: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Registers `n` additional outstanding operations.
    pub fn add(&self, n: usize) {
        self.state.borrow_mut().count += n;
    }

    /// Marks one operation as done.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`WaitGroup::add`] registered.
    pub fn done(&self) {
        let mut st = self.state.borrow_mut();
        st.count = st
            .count
            .checked_sub(1)
            .expect("WaitGroup::done called with zero outstanding operations");
        if st.count == 0 {
            for w in st.waiters.drain(..) {
                w.wake();
            }
        }
    }

    /// Current outstanding count.
    pub fn count(&self) -> usize {
        self.state.borrow().count
    }

    /// Waits until the count reaches zero (resolves immediately if it is
    /// already zero).
    pub fn wait(&self) -> WgWait {
        WgWait { wg: self.clone() }
    }
}

/// Future returned by [`WaitGroup::wait`].
#[derive(Debug)]
pub struct WgWait {
    wg: WaitGroup,
}

impl Future for WgWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.wg.state.borrow_mut();
        if st.count == 0 {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::time::Duration;

    #[test]
    fn semaphore_bounds_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let active = Rc::new(RefCell::new((0usize, 0usize))); // (current, max)
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sem = sem.clone();
            let active = active.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                sem.acquire().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(Duration::from_nanos(10)).await;
                active.borrow_mut().0 -= 1;
                sem.release();
            }));
        }
        sim.run();
        assert!(handles.iter().all(|h| h.is_finished()));
        assert_eq!(active.borrow().1, 2, "max concurrency must equal permits");
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn try_acquire_fails_when_empty() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }

    #[test]
    fn barrier_releases_all_and_reuses() {
        let sim = Sim::new();
        let barrier = Barrier::new(3);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let b = barrier.clone();
            let log = log.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(Duration::from_nanos(i as u64 * 10)).await;
                log.borrow_mut().push(("arrive", i));
                b.wait().await;
                log.borrow_mut().push(("pass1", i));
                b.wait().await;
                log.borrow_mut().push(("pass2", i));
            });
        }
        sim.run();
        let log = log.borrow();
        let pos = |tag: &str, i: u32| log.iter().position(|e| *e == (tag, i)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(pos("arrive", i) < pos("pass1", j));
                assert!(pos("pass1", i) < pos("pass2", j));
            }
        }
    }

    #[test]
    fn barrier_leader_flag_unique() {
        let sim = Sim::new();
        let barrier = Barrier::new(4);
        let leaders = Rc::new(RefCell::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let leaders = leaders.clone();
            sim.spawn(async move {
                if b.wait().await {
                    *leaders.borrow_mut() += 1;
                }
            });
        }
        sim.run();
        assert_eq!(*leaders.borrow(), 1);
    }

    #[test]
    fn wait_group_waits_for_all() {
        let sim = Sim::new();
        let wg = WaitGroup::new();
        wg.add(3);
        for i in 0..3u64 {
            let wg = wg.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(Duration::from_nanos(i * 5 + 1)).await;
                wg.done();
            });
        }
        let s = sim.clone();
        let wg2 = wg.clone();
        let t = sim.block_on(async move {
            wg2.wait().await;
            s.now().as_nanos()
        });
        assert_eq!(t, 11);
        assert_eq!(wg.count(), 0);
    }

    #[test]
    fn wait_group_empty_resolves_immediately() {
        let sim = Sim::new();
        let wg = WaitGroup::new();
        sim.block_on(async move { wg.wait().await });
    }
}
