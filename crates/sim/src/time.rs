//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in simulated time, measured in nanoseconds since the start of the
/// simulation.
///
/// `SimTime` is a plain `u64` of nanoseconds wrapped in a newtype so that it
/// cannot be confused with durations or wall-clock instants. It is totally
/// ordered and supports the arithmetic needed by event scheduling.
///
/// ```rust
/// use sim::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_micros(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the time as nanoseconds since the simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference to an earlier time.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    ///
    /// Returns `None` on overflow of the underlying nanosecond counter (more
    /// than ~584 simulated years).
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        let nanos = u64::try_from(d.as_nanos()).ok()?;
        self.0.checked_add(nanos).map(SimTime)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the sum overflows the u64 nanosecond counter.
    fn add(self, d: Duration) -> SimTime {
        self.checked_add(d).expect("SimTime overflow")
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_round_trip() {
        let t = SimTime::ZERO + Duration::from_nanos(1500);
        assert_eq!(t.as_nanos(), 1500);
        assert_eq!(t - SimTime::ZERO, Duration::from_nanos(1500));
    }

    #[test]
    fn ordering_is_by_nanos() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::from_nanos(7), SimTime::from_nanos(7));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_nanos(4));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::from_nanos(u64::MAX)
            .checked_add(Duration::from_nanos(1))
            .is_none());
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_nanos(2_000_000_000).to_string(), "2.000000s");
    }
}
