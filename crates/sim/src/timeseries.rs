//! Windowed time-series sampling on virtual time.
//!
//! PR 1's tracing and metrics answer "what happened" and "how much in
//! total"; this module answers "how did it move through time". A
//! [`Sampler`] snapshots a chosen set of counters and histograms at a fixed
//! virtual-time interval, turning cumulative metrics into per-window
//! *deltas* (throughput) and per-window *percentiles* (p50/p99 under a
//! fault, queue depth during congestion) stored in a fixed-capacity series.
//!
//! The discipline mirrors [`crate::trace`]: a sampler starts disabled and
//! costs nothing until [`Sampler::enable`] is called; the driver task is
//! bounded (it exits once the series is full or the sampler is disabled),
//! so enabling sampling never keeps a simulation alive forever; and because
//! sampling is itself just virtual-time events on the deterministic
//! executor, two seeded runs produce byte-identical series.
//!
//! ```rust
//! use sim::{Duration, Metrics, Sim};
//! use sim::timeseries::Sampler;
//!
//! let sim = Sim::new();
//! let m = Metrics::new();
//! let ts = Sampler::new();
//! ts.enable(Duration::from_millis(1), 8);
//! ts.track_counter("ops");
//! ts.track_histogram("lat");
//! ts.spawn_driver(&sim, &m);
//! let (s, mm) = (sim.clone(), m.clone());
//! sim.spawn(async move {
//!     for i in 0..40u64 {
//!         mm.incr("ops");
//!         mm.record_value("lat", 100 + i);
//!         s.sleep(Duration::from_micros(100)).await;
//!     }
//! });
//! sim.run();
//! let w = ts.windows();
//! assert_eq!(w[0].counters["ops"], 10);
//! assert_eq!(w[0].histograms["lat"].count, 10);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use crate::executor::Sim;
use crate::metrics::Metrics;
use crate::time::SimTime;

/// Per-window summary of one histogram: exact percentiles over only the
/// samples recorded inside the window.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Samples recorded in this window.
    pub count: u64,
    /// Window-local median (0 when the window saw no samples).
    pub p50: u64,
    /// Window-local 99th percentile (0 when empty).
    pub p99: u64,
    /// Window-local maximum (0 when empty).
    pub max: u64,
}

/// One sampling window: `[start_ns, end_ns)` in virtual time, with counter
/// deltas and histogram summaries for every tracked series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Window {
    /// Zero-based window index.
    pub index: u64,
    /// Window start (virtual nanoseconds, inclusive).
    pub start_ns: u64,
    /// Window end (virtual nanoseconds, exclusive).
    pub end_ns: u64,
    /// Counter increments inside the window, keyed by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries over the window's samples, keyed by metric name.
    pub histograms: BTreeMap<String, WindowStats>,
}

#[derive(Default)]
struct State {
    enabled: bool,
    interval: Duration,
    capacity: usize,
    counters: Vec<String>,
    histograms: Vec<String>,
    prev_counters: BTreeMap<String, u64>,
    prev_hist_len: BTreeMap<String, usize>,
    last_sample_ns: u64,
    windows: Vec<Window>,
}

/// A deterministic windowed sampler over a shared [`Metrics`] registry.
///
/// Clonable handle; all clones share state. See the module docs for the
/// lifecycle (`enable` → `track_*` → `spawn_driver` → run → `windows`).
#[derive(Clone, Default)]
pub struct Sampler {
    shared: Rc<RefCell<State>>,
}

impl Sampler {
    /// Creates a disabled sampler. Disabled samplers never allocate windows
    /// and their driver task exits immediately.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables sampling every `interval` of virtual time into a series of at
    /// most `capacity` windows, clearing any previous configuration and
    /// recorded windows.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `capacity` is zero.
    pub fn enable(&self, interval: Duration, capacity: usize) {
        assert!(!interval.is_zero(), "sampling interval must be > 0");
        assert!(capacity > 0, "sampling capacity must be > 0");
        let mut st = self.shared.borrow_mut();
        *st = State {
            enabled: true,
            interval,
            capacity,
            ..State::default()
        };
    }

    /// Disables sampling; recorded windows remain readable. A running driver
    /// task exits at its next tick.
    pub fn disable(&self) {
        self.shared.borrow_mut().enabled = false;
    }

    /// True while sampling is enabled.
    pub fn is_enabled(&self) -> bool {
        self.shared.borrow().enabled
    }

    /// Tracks the counter `name` (fully-qualified registry name): each
    /// window records the counter's increment over that window.
    pub fn track_counter(&self, name: &str) {
        let mut st = self.shared.borrow_mut();
        if !st.counters.iter().any(|n| n == name) {
            st.counters.push(name.to_string());
        }
    }

    /// Tracks the histogram `name`: each window records count/p50/p99/max
    /// over only the samples that arrived inside that window.
    pub fn track_histogram(&self, name: &str) {
        let mut st = self.shared.borrow_mut();
        if !st.histograms.iter().any(|n| n == name) {
            st.histograms.push(name.to_string());
        }
    }

    /// Re-baselines the delta tracking to the registry's current values, so
    /// the next window measures increments from *now* rather than from the
    /// registry's whole history.
    pub fn baseline(&self, now: SimTime, metrics: &Metrics) {
        let mut st = self.shared.borrow_mut();
        st.last_sample_ns = now.as_nanos();
        let counters = st.counters.clone();
        for name in counters {
            let v = metrics.counter(&name);
            st.prev_counters.insert(name, v);
        }
        let histograms = st.histograms.clone();
        for name in histograms {
            let len = metrics.histogram(&name).map_or(0, |h| h.len());
            st.prev_hist_len.insert(name, len);
        }
    }

    /// Closes one window ending at `now`: snapshots counter deltas and
    /// window-local histogram percentiles since the previous sample (or
    /// baseline). No-op when disabled or when the series is full.
    pub fn sample(&self, now: SimTime, metrics: &Metrics) {
        let mut st = self.shared.borrow_mut();
        if !st.enabled || st.windows.len() >= st.capacity {
            return;
        }
        let end_ns = now.as_nanos();
        let mut win = Window {
            index: st.windows.len() as u64,
            start_ns: st.last_sample_ns,
            end_ns,
            ..Window::default()
        };
        for name in &st.counters {
            let v = metrics.counter(name);
            let prev = st.prev_counters.get(name).copied().unwrap_or(0);
            win.counters.insert(name.clone(), v.saturating_sub(prev));
        }
        for name in &st.histograms {
            let prev_len = st.prev_hist_len.get(name).copied().unwrap_or(0);
            let stats = match metrics.histogram(name) {
                Some(h) => window_stats(&h.samples()[prev_len.min(h.len())..]),
                None => WindowStats::default(),
            };
            win.histograms.insert(name.clone(), stats);
        }
        // Advance the baselines for the next window.
        let updates: Vec<(String, u64)> = win
            .counters
            .keys()
            .map(|n| (n.clone(), metrics.counter(n)))
            .collect();
        for (n, v) in updates {
            st.prev_counters.insert(n, v);
        }
        let hist_updates: Vec<(String, usize)> = win
            .histograms
            .keys()
            .map(|n| (n.clone(), metrics.histogram(n).map_or(0, |h| h.len())))
            .collect();
        for (n, l) in hist_updates {
            st.prev_hist_len.insert(n, l);
        }
        st.last_sample_ns = end_ns;
        st.windows.push(win);
    }

    /// Spawns the bounded driver task: starting from the current virtual
    /// instant it re-baselines, then closes one window per interval until the
    /// series reaches capacity or the sampler is disabled. The task is finite,
    /// so [`Sim::run`] still terminates with a driver attached.
    pub fn spawn_driver(&self, sim: &Sim, metrics: &Metrics) {
        let ts = self.clone();
        let sim2 = sim.clone();
        let metrics = metrics.clone();
        sim.spawn(async move {
            if !ts.is_enabled() {
                return;
            }
            ts.baseline(sim2.now(), &metrics);
            loop {
                let interval = {
                    let st = ts.shared.borrow();
                    if !st.enabled || st.windows.len() >= st.capacity {
                        return;
                    }
                    st.interval
                };
                sim2.sleep(interval).await;
                ts.sample(sim2.now(), &metrics);
            }
        });
    }

    /// Snapshot of every recorded window, in order.
    pub fn windows(&self) -> Vec<Window> {
        self.shared.borrow().windows.clone()
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.shared.borrow().windows.len()
    }

    /// True if no windows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.shared.borrow().windows.is_empty()
    }
}

/// Exact percentiles over one window's samples (order-insensitive).
fn window_stats(samples: &[u64]) -> WindowStats {
    if samples.is_empty() {
        return WindowStats::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| sorted[((p / 100.0) * (sorted.len() - 1) as f64).floor() as usize];
    WindowStats {
        count: sorted.len() as u64,
        p50: rank(50.0),
        p99: rank(99.0),
        max: *sorted.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sampler_records_nothing() {
        let sim = Sim::new();
        let m = Metrics::new();
        let ts = Sampler::new();
        ts.track_counter("ops");
        ts.spawn_driver(&sim, &m);
        m.incr("ops");
        ts.sample(sim.now(), &m);
        sim.run();
        assert!(ts.is_empty());
        assert_eq!(sim.now(), SimTime::ZERO, "no driver events when disabled");
    }

    #[test]
    fn windows_hold_deltas_not_cumulative_values() {
        let sim = Sim::new();
        let m = Metrics::new();
        // Pre-existing history must not leak into the first window.
        m.add("ops", 1000);
        m.record_value("lat", 999_999);
        let ts = Sampler::new();
        ts.enable(Duration::from_millis(1), 4);
        ts.track_counter("ops");
        ts.track_histogram("lat");
        ts.spawn_driver(&sim, &m);
        let (s, mm) = (sim.clone(), m.clone());
        sim.spawn(async move {
            for i in 0..4u64 {
                // Window i gets i+1 ops with latency 10*(i+1).
                for _ in 0..=i {
                    mm.incr("ops");
                    mm.record_value("lat", 10 * (i + 1));
                }
                s.sleep(Duration::from_millis(1)).await;
            }
        });
        sim.run();
        let w = ts.windows();
        assert_eq!(w.len(), 4);
        for (i, win) in w.iter().enumerate() {
            assert_eq!(win.index as usize, i);
            assert_eq!(win.counters["ops"], i as u64 + 1);
            let h = &win.histograms["lat"];
            assert_eq!(h.count, i as u64 + 1);
            assert_eq!(h.p50, 10 * (i as u64 + 1));
            assert_eq!(h.p99, 10 * (i as u64 + 1));
            assert_eq!(h.max, 10 * (i as u64 + 1));
        }
        assert_eq!(w[0].start_ns, 0);
        assert_eq!(w[0].end_ns, 1_000_000);
        assert_eq!(w[3].end_ns, 4_000_000);
    }

    #[test]
    fn driver_is_bounded_by_capacity() {
        let sim = Sim::new();
        let m = Metrics::new();
        let ts = Sampler::new();
        ts.enable(Duration::from_millis(1), 3);
        ts.track_counter("x");
        ts.spawn_driver(&sim, &m);
        // With no other tasks, run() must terminate after exactly `capacity`
        // ticks — an unbounded driver would loop forever.
        let end = sim.run();
        assert_eq!(ts.len(), 3);
        assert_eq!(end.as_nanos(), 3_000_000);
    }

    #[test]
    fn empty_windows_are_explicit_zeros() {
        let sim = Sim::new();
        let m = Metrics::new();
        let ts = Sampler::new();
        ts.enable(Duration::from_millis(1), 2);
        ts.track_counter("ops");
        ts.track_histogram("lat");
        ts.spawn_driver(&sim, &m);
        sim.run();
        let w = ts.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].counters["ops"], 0);
        assert_eq!(w[0].histograms["lat"], WindowStats::default());
    }

    #[test]
    fn two_runs_are_identical() {
        fn run_once() -> Vec<Window> {
            let sim = Sim::new();
            let m = Metrics::new();
            let ts = Sampler::new();
            ts.enable(Duration::from_micros(500), 6);
            ts.track_counter("ops");
            ts.track_histogram("lat");
            ts.spawn_driver(&sim, &m);
            let (s, mm) = (sim.clone(), m.clone());
            sim.spawn(async move {
                for i in 0..30u64 {
                    mm.incr("ops");
                    mm.record_value("lat", (i * 37) % 11);
                    s.sleep(Duration::from_micros(73)).await;
                }
            });
            sim.run();
            ts.windows()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn disable_stops_the_driver() {
        let sim = Sim::new();
        let m = Metrics::new();
        let ts = Sampler::new();
        ts.enable(Duration::from_millis(1), 100);
        ts.track_counter("x");
        ts.spawn_driver(&sim, &m);
        let ts2 = ts.clone();
        sim.schedule(Duration::from_micros(2500), move || ts2.disable());
        let end = sim.run();
        // Two full windows close before the disable lands mid-third-window.
        assert_eq!(ts.len(), 2);
        assert!(end.as_nanos() <= 3_000_000);
    }
}
