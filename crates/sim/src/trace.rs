//! Deterministic virtual-time tracing.
//!
//! A [`Tracer`] collects typed span/instant events stamped with [`SimTime`]
//! into a bounded ring buffer owned by the simulation core. Because the
//! executor is single-threaded and all timestamps are virtual, two runs of
//! the same seeded scenario produce **byte-identical** trace logs — the
//! export is suitable both for golden-file tests and for loading into
//! Perfetto / `chrome://tracing` via [`Tracer::export_chrome_trace`].
//!
//! Tracing is disabled by default and designed to cost nearly nothing when
//! off: event names and categories are `&'static str`, events are
//! fixed-size values in a preallocated ring, and the [`Span`] guard does no
//! heap allocation on either path.
//!
//! ```rust
//! use sim::{Sim, Duration};
//!
//! let sim = Sim::new();
//! let tracer = sim.tracer();
//! tracer.enable(1024);
//! let s = sim.clone();
//! sim.block_on(async move {
//!     let span = s.tracer().span("core", "demo.op", 0);
//!     s.sleep(Duration::from_nanos(500)).await;
//!     span.end();
//! });
//! let events = tracer.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].dur, Some(500));
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record: a completed span (`dur = Some(..)`) or an instant
/// (`dur = None`).
///
/// Names and categories are static so that recording never allocates; the
/// `track` discriminates instances of the same component (QP number, link
/// id, client id) and becomes the thread id in the Chrome export. `arg` is a
/// free payload slot (byte count, WR id, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Layer the event belongs to (`"fabric"`, `"rdma"`, `"core"`, …).
    pub cat: &'static str,
    /// Event name from the registry table in `EXPERIMENTS.md`.
    pub name: &'static str,
    /// Instance track (QP / link / client id); `0` for singletons.
    pub track: u64,
    /// Virtual start time.
    pub start: SimTime,
    /// Span duration in nanoseconds, or `None` for an instant event.
    pub dur: Option<u64>,
    /// Free payload (byte count, WR id, reason code, …).
    pub arg: u64,
    /// Monotone sequence number, unique within a run.
    pub seq: u64,
}

#[derive(Default)]
pub(crate) struct TraceBuf {
    enabled: bool,
    capacity: usize,
    /// Ring storage; once `capacity` is reached the oldest event is
    /// overwritten (`head` marks the logical start).
    events: Vec<TraceEvent>,
    head: usize,
    next_seq: u64,
    evicted: u64,
    published_evicted: u64,
}

impl TraceBuf {
    fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity > 0 {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

/// Clonable handle to the simulation's trace ring buffer.
///
/// Obtain one with [`crate::Sim::tracer`]; all clones for a given
/// simulation share the same buffer and enabled flag.
#[derive(Clone)]
pub struct Tracer {
    buf: Rc<RefCell<TraceBuf>>,
    clock: Rc<dyn Fn() -> SimTime>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buf = self.buf.borrow();
        f.debug_struct("Tracer")
            .field("enabled", &buf.enabled)
            .field("events", &buf.events.len())
            .field("capacity", &buf.capacity)
            .finish()
    }
}

impl Tracer {
    pub(crate) fn from_parts(buf: Rc<RefCell<TraceBuf>>, clock: Rc<dyn Fn() -> SimTime>) -> Self {
        Tracer { buf, clock }
    }

    pub(crate) fn new_buf() -> Rc<RefCell<TraceBuf>> {
        Rc::new(RefCell::new(TraceBuf::default()))
    }

    /// Starts recording into a ring of at most `capacity` events (older
    /// events are evicted once full). Clears any previous recording.
    pub fn enable(&self, capacity: usize) {
        let mut buf = self.buf.borrow_mut();
        buf.enabled = true;
        buf.capacity = capacity;
        buf.events = Vec::with_capacity(capacity);
        buf.head = 0;
        buf.next_seq = 0;
        buf.evicted = 0;
        buf.published_evicted = 0;
    }

    /// Stops recording (the collected events stay readable).
    pub fn disable(&self) {
        self.buf.borrow_mut().enabled = false;
    }

    /// True while recording.
    pub fn is_enabled(&self) -> bool {
        self.buf.borrow().enabled
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.borrow().events.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted by ring wraparound.
    pub fn evicted(&self) -> u64 {
        self.buf.borrow().evicted
    }

    /// Mirrors ring evictions into `metrics` as the `trace.evicted`
    /// counter, adding only the evictions since the last publish so
    /// repeated calls keep the counter exact. Call wherever the trace is
    /// exported or the registry is dumped.
    pub fn publish_evicted(&self, metrics: &crate::metrics::Metrics) {
        let mut buf = self.buf.borrow_mut();
        let delta = buf.evicted - buf.published_evicted;
        if delta > 0 {
            metrics.add("trace.evicted", delta);
            buf.published_evicted = buf.evicted;
        }
    }

    /// Copies the buffered events out, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.borrow().snapshot()
    }

    /// Opens a span; the span records a complete event when [`Span::end`]ed
    /// or dropped. When tracing is disabled this is a no-op guard and costs
    /// only the enabled check.
    pub fn span(&self, cat: &'static str, name: &'static str, track: u64) -> Span {
        self.span_arg(cat, name, track, 0)
    }

    /// [`Tracer::span`] with a payload value (byte count, WR id, …).
    pub fn span_arg(&self, cat: &'static str, name: &'static str, track: u64, arg: u64) -> Span {
        if !self.is_enabled() {
            return Span { live: None };
        }
        Span {
            live: Some(LiveSpan {
                tracer: self.clone(),
                cat,
                name,
                track,
                arg,
                start: (self.clock)(),
            }),
        }
    }

    /// Records a complete event spanning from `start` (captured earlier via
    /// the simulation clock) to now. For event-driven code where a [`Span`]
    /// guard cannot live across the operation (state machines, callbacks).
    pub fn complete_at(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u64,
        start: SimTime,
        arg: u64,
    ) {
        let mut buf = self.buf.borrow_mut();
        if !buf.enabled {
            return;
        }
        let end = (self.clock)();
        buf.push(TraceEvent {
            cat,
            name,
            track,
            start,
            dur: Some(end.saturating_since(start).as_nanos() as u64),
            arg,
            seq: 0,
        });
    }

    /// Records an instant event at the current virtual time.
    pub fn instant(&self, cat: &'static str, name: &'static str, track: u64, arg: u64) {
        let mut buf = self.buf.borrow_mut();
        if !buf.enabled {
            return;
        }
        let at = (self.clock)();
        buf.push(TraceEvent {
            cat,
            name,
            track,
            start: at,
            dur: None,
            arg,
            seq: 0,
        });
    }

    fn close_span(&self, span: &LiveSpan) {
        let mut buf = self.buf.borrow_mut();
        if !buf.enabled {
            return;
        }
        let end = (self.clock)();
        buf.push(TraceEvent {
            cat: span.cat,
            name: span.name,
            track: span.track,
            start: span.start,
            dur: Some(end.saturating_since(span.start).as_nanos() as u64),
            arg: span.arg,
            seq: 0,
        });
    }

    /// Serialises the buffered events as Chrome trace-event JSON
    /// (the "JSON object format": `{"traceEvents": [...]}`), loadable in
    /// Perfetto or `chrome://tracing`. Timestamps are microseconds with
    /// nanosecond precision kept in the fractional digits.
    ///
    /// The output depends only on the recorded events, so two deterministic
    /// runs of the same scenario export byte-identical documents.
    pub fn export_chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 128 + 64);
        // `evicted` in the top-level metadata records how many events the
        // ring dropped, so a truncated trace is never silently misread as
        // the whole story.
        let _ = write!(
            out,
            "{{\"displayTimeUnit\": \"ns\", \"evicted\": {}, \"traceEvents\": [",
            self.evicted()
        );
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            out.push_str("\"name\": ");
            push_escaped(&mut out, ev.name);
            out.push_str(", \"cat\": ");
            push_escaped(&mut out, ev.cat);
            let _ = write!(
                out,
                ", \"ph\": \"{}\", \"ts\": {}, ",
                if ev.dur.is_some() { 'X' } else { 'i' },
                micros(ev.start.as_nanos()),
            );
            if let Some(d) = ev.dur {
                let _ = write!(out, "\"dur\": {}, ", micros(d));
            } else {
                out.push_str("\"s\": \"t\", ");
            }
            let _ = write!(
                out,
                "\"pid\": 1, \"tid\": {}, \"args\": {{\"arg\": {}, \"seq\": {}}}}}",
                ev.track, ev.arg, ev.seq
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Fixed-point nanos → microseconds rendering (`1234` ns → `"1.234"`), so
/// exports are exact and byte-stable.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Writes `s` as a quoted JSON string, escaping quotes, backslashes, and
/// control characters. Registry names are plain identifiers today, but the
/// export must stay valid JSON for any future name.
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct LiveSpan {
    tracer: Tracer,
    cat: &'static str,
    name: &'static str,
    track: u64,
    arg: u64,
    start: SimTime,
}

/// Guard for an in-progress span; records a complete event on drop.
///
/// When tracing is disabled the guard is inert (`live: None`) and drop does
/// nothing.
#[must_use = "a span measures until it is dropped or .end()ed"]
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// Explicitly closes the span (equivalent to dropping it).
    pub fn end(self) {}

    /// Updates the payload value recorded with the span (e.g. bytes moved,
    /// determined mid-operation).
    pub fn set_arg(&mut self, arg: u64) {
        if let Some(live) = &mut self.live {
            live.arg = arg;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            live.tracer.clone().close_span(&live);
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.live {
            Some(l) => write!(f, "Span({}: {} @ {:?})", l.cat, l.name, l.start),
            None => write!(f, "Span(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Duration, Sim};

    #[test]
    fn disabled_tracer_records_nothing() {
        let sim = Sim::new();
        let t = sim.tracer();
        t.instant("test", "x", 0, 0);
        let span = t.span("test", "y", 0);
        span.end();
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn span_measures_virtual_time() {
        let sim = Sim::new();
        let t = sim.tracer();
        t.enable(16);
        let s = sim.clone();
        sim.block_on(async move {
            let tr = s.tracer();
            let span = tr.span_arg("test", "op", 3, 99);
            s.sleep(Duration::from_nanos(250)).await;
            span.end();
        });
        let events = t.events();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.name, "op");
        assert_eq!(ev.track, 3);
        assert_eq!(ev.arg, 99);
        assert_eq!(ev.start.as_nanos(), 0);
        assert_eq!(ev.dur, Some(250));
    }

    #[test]
    fn ring_buffer_wraps_and_keeps_newest() {
        let sim = Sim::new();
        let t = sim.tracer();
        t.enable(4);
        for i in 0..10 {
            t.instant("test", "tick", i, i);
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(t.evicted(), 6);
        // Oldest evicted: the survivors are the last four, in order.
        let tracks: Vec<u64> = events.iter().map(|e| e.track).collect();
        assert_eq!(tracks, vec![6, 7, 8, 9]);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn enable_clears_previous_recording() {
        let sim = Sim::new();
        let t = sim.tracer();
        t.enable(8);
        t.instant("test", "a", 0, 0);
        t.enable(8);
        assert!(t.is_empty());
        t.instant("test", "b", 0, 0);
        assert_eq!(t.events()[0].seq, 0);
    }

    #[test]
    fn chrome_export_shape() {
        let sim = Sim::new();
        let t = sim.tracer();
        t.enable(16);
        let s = sim.clone();
        sim.block_on(async move {
            let tr = s.tracer();
            tr.instant("fabric", "pkt", 1, 64);
            let span = tr.span("core", "read", 2);
            s.sleep(Duration::from_nanos(1_500)).await;
            span.end();
        });
        let json = t.export_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 1.500"));
        assert!(json.contains("\"evicted\": 0"));
        // Deterministic: exporting twice is byte-identical.
        assert_eq!(json, t.export_chrome_trace());
    }

    #[test]
    fn chrome_export_reports_evictions() {
        let sim = Sim::new();
        let t = sim.tracer();
        t.enable(2);
        for i in 0..5 {
            t.instant("test", "tick", i, i);
        }
        let json = t.export_chrome_trace();
        assert!(json.contains("\"evicted\": 3"));
    }

    #[test]
    fn publish_evicted_mirrors_ring_overflow_into_metrics() {
        let sim = Sim::new();
        let m = crate::Metrics::new();
        let t = sim.tracer();
        t.enable(2);
        for i in 0..7 {
            t.instant("test", "tick", i, i);
        }
        t.publish_evicted(&m);
        assert_eq!(m.counter("trace.evicted"), 5);
        // Repeated publishing only adds the delta.
        t.publish_evicted(&m);
        assert_eq!(m.counter("trace.evicted"), 5);
        t.instant("test", "tick", 7, 7);
        t.publish_evicted(&m);
        assert_eq!(m.counter("trace.evicted"), 6);
    }

    #[test]
    fn tracer_clones_share_state() {
        let sim = Sim::new();
        let a = sim.tracer();
        let b = sim.tracer();
        a.enable(8);
        assert!(b.is_enabled());
        b.instant("test", "x", 0, 0);
        assert_eq!(a.len(), 1);
    }
}
