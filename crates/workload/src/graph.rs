//! Graph generators and the CSR representation used by the graph framework.

use sim::DetRng;

/// A directed graph in compressed-sparse-row form, with both out-edge and
/// in-edge indexes (the pull-style PageRank needs in-edges).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// Number of vertices.
    pub n: u64,
    /// Out-edge index: `out_adj[out_xadj[v] .. out_xadj[v+1]]` are v's
    /// out-neighbours.
    pub out_xadj: Vec<u64>,
    /// Out-edge targets.
    pub out_adj: Vec<u64>,
    /// In-edge index.
    pub in_xadj: Vec<u64>,
    /// In-edge sources.
    pub in_adj: Vec<u64>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list; duplicate edges are kept,
    /// self-loops allowed.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: u64, edges: &[(u64, u64)]) -> CsrGraph {
        for &(s, d) in edges {
            assert!(s < n && d < n, "edge endpoint out of range");
        }
        let build = |key: fn(&(u64, u64)) -> u64, val: fn(&(u64, u64)) -> u64| {
            let mut xadj = vec![0u64; n as usize + 1];
            for e in edges {
                xadj[key(e) as usize + 1] += 1;
            }
            for i in 0..n as usize {
                xadj[i + 1] += xadj[i];
            }
            let mut cursor = xadj.clone();
            let mut adj = vec![0u64; edges.len()];
            for e in edges {
                let k = key(e) as usize;
                adj[cursor[k] as usize] = val(e);
                cursor[k] += 1;
            }
            (xadj, adj)
        };
        let (out_xadj, out_adj) = build(|e| e.0, |e| e.1);
        let (in_xadj, in_adj) = build(|e| e.1, |e| e.0);
        CsrGraph {
            n,
            out_xadj,
            out_adj,
            in_xadj,
            in_adj,
        }
    }

    /// Number of edges.
    pub fn m(&self) -> u64 {
        self.out_adj.len() as u64
    }

    /// Out-degree of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn out_degree(&self, v: u64) -> u64 {
        self.out_xadj[v as usize + 1] - self.out_xadj[v as usize]
    }

    /// Out-neighbours of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn out_neighbors(&self, v: u64) -> &[u64] {
        &self.out_adj[self.out_xadj[v as usize] as usize..self.out_xadj[v as usize + 1] as usize]
    }

    /// In-neighbours of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn in_neighbors(&self, v: u64) -> &[u64] {
        &self.in_adj[self.in_xadj[v as usize] as usize..self.in_xadj[v as usize + 1] as usize]
    }
}

/// Generates a uniform random directed graph with `n` vertices and `m`
/// edges.
pub fn uniform_graph(n: u64, m: u64, seed: u64) -> CsrGraph {
    let mut rng = DetRng::new(seed);
    let edges: Vec<(u64, u64)> = (0..m)
        .map(|_| (rng.range_u64(0, n), rng.range_u64(0, n)))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Generates an RMAT (Kronecker) power-law graph — the skewed-degree shape
/// of social and web graphs that the paper's PageRank evaluation targets.
///
/// `scale` is log2 of the vertex count; `m` the number of edges; `(a, b, c)`
/// the standard RMAT quadrant probabilities (Graph500 uses 0.57/0.19/0.19).
pub fn rmat_graph(scale: u32, m: u64, seed: u64) -> CsrGraph {
    let n = 1u64 << scale;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = DetRng::new(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut src, mut dst) = (0u64, 0u64);
        for bit in (0..scale).rev() {
            let r = rng.f64();
            let (sbit, dbit) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            src |= sbit << bit;
            dst |= dbit << bit;
        }
        edges.push((src, dst));
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trips_edge_list() {
        let edges = vec![(0, 1), (0, 2), (1, 2), (2, 0), (2, 0)];
        let g = CsrGraph::from_edges(3, &edges);
        assert_eq!(g.m(), 5);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[0, 0]);
        assert_eq!(g.in_neighbors(0), &[2, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn edge_count_conserved_both_indexes() {
        let g = uniform_graph(100, 1000, 42);
        assert_eq!(g.m(), 1000);
        assert_eq!(g.in_adj.len(), 1000);
        assert_eq!(*g.out_xadj.last().unwrap(), 1000);
        assert_eq!(*g.in_xadj.last().unwrap(), 1000);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_graph(50, 200, 7);
        let b = uniform_graph(50, 200, 7);
        assert_eq!(a.out_adj, b.out_adj);
        let a = rmat_graph(8, 1000, 7);
        let b = rmat_graph(8, 1000, 7);
        assert_eq!(a.out_adj, b.out_adj);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat_graph(10, 8 * 1024, 1);
        let max_deg = (0..g.n).map(|v| g.out_degree(v)).max().unwrap();
        let mean = g.m() as f64 / g.n as f64;
        assert!(
            max_deg as f64 > mean * 5.0,
            "RMAT should produce hubs: max {max_deg}, mean {mean:.1}"
        );
    }

    #[test]
    fn in_out_degree_sums_match() {
        let g = rmat_graph(8, 2000, 3);
        let out: u64 = (0..g.n).map(|v| g.out_degree(v)).sum();
        let inn: u64 = (0..g.n)
            .map(|v| g.in_xadj[v as usize + 1] - g.in_xadj[v as usize])
            .sum();
        assert_eq!(out, inn);
        assert_eq!(out, g.m());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }
}
