//! Deterministic workload generators for the RStore reproduction.
//!
//! * [`graph`] — uniform and RMAT (power-law) directed graphs in CSR form,
//!   for the graph-processing experiments (E6/E7).
//! * [`records`] — TeraGen-style 100-byte sort records, key helpers, and a
//!   Zipf sampler, for the Key-Value sorter experiments (E8/E9).
//!
//! All generators take explicit seeds and are bit-for-bit reproducible.

pub mod graph;
pub mod records;

pub use graph::{rmat_graph, uniform_graph, CsrGraph};
pub use records::{is_sorted, record_key, sort_records, teragen, Zipf, KEY_BYTES, RECORD_BYTES};
