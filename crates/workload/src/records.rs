//! TeraSort-style records and key distributions.

use sim::DetRng;

/// Size of a sort record: 10-byte key + 90-byte value, as in TeraGen.
pub const RECORD_BYTES: usize = 100;
/// Size of a record key.
pub const KEY_BYTES: usize = 10;

/// Generates `count` TeraGen-style records into a flat byte buffer
/// (`count * 100` bytes). Keys are uniformly random; the value embeds the
/// record index so corruption is detectable.
pub fn teragen(count: u64, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = vec![0u8; count as usize * RECORD_BYTES];
    for i in 0..count as usize {
        let rec = &mut out[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
        rng.fill_bytes(&mut rec[..KEY_BYTES]);
        rec[KEY_BYTES..KEY_BYTES + 8].copy_from_slice(&(i as u64).to_le_bytes());
        // The rest of the value is a fixed filler pattern.
        for (j, b) in rec[KEY_BYTES + 8..].iter_mut().enumerate() {
            *b = (j % 251) as u8;
        }
    }
    out
}

/// Extracts the key of record `i` from a flat record buffer.
///
/// # Panics
///
/// Panics if the buffer does not contain record `i`.
pub fn record_key(buf: &[u8], i: usize) -> &[u8] {
    &buf[i * RECORD_BYTES..i * RECORD_BYTES + KEY_BYTES]
}

/// Checks that a flat record buffer is sorted by key.
pub fn is_sorted(buf: &[u8]) -> bool {
    let n = buf.len() / RECORD_BYTES;
    (1..n).all(|i| record_key(buf, i - 1) <= record_key(buf, i))
}

/// Sorts a flat record buffer in place by key (the "local sort" phase).
pub fn sort_records(buf: &mut [u8]) {
    debug_assert_eq!(buf.len() % RECORD_BYTES, 0);
    let n = buf.len() / RECORD_BYTES;
    let mut index: Vec<usize> = (0..n).collect();
    index.sort_by(|&a, &b| record_key(buf, a).cmp(record_key(buf, b)));
    let mut out = vec![0u8; buf.len()];
    for (pos, &src) in index.iter().enumerate() {
        out[pos * RECORD_BYTES..(pos + 1) * RECORD_BYTES]
            .copy_from_slice(&buf[src * RECORD_BYTES..(src + 1) * RECORD_BYTES]);
    }
    buf.copy_from_slice(&out);
}

const LN_2: f64 = std::f64::consts::LN_2;
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// `log2(x)` for finite `x > 0`, computed from IEEE-exact arithmetic only
/// (`+ - * /` and exponent-bit manipulation — every step is
/// correctly-rounded by the standard, no libm calls). `f64::ln`/`powf`
/// lower to the platform's libm, whose last-ulp behaviour differs across
/// implementations; benchmark workloads that feed committed byte-identical
/// baselines (the Zipf sampler) must not depend on that.
fn det_log2(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    // Re-centre the mantissa on [√2/2, √2) so t below stays small.
    if m > SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    // ln(m) = 2·atanh(t) with t = (m-1)/(m+1); odd series in t².
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut series = 0.0;
    for k in (0..9).rev() {
        series = series * t2 + 1.0 / (2 * k + 1) as f64;
    }
    e as f64 + (2.0 * t * series) / LN_2
}

/// `2^y` for `y` in a sane range, from IEEE-exact arithmetic only
/// (see [`det_log2`]).
fn det_exp2(y: f64) -> f64 {
    let n = y.floor();
    let z = (y - n) * LN_2;
    // e^z on [0, ln 2) via a Horner-nested Taylor tail.
    let mut acc = 1.0;
    for k in (1..=18).rev() {
        acc = 1.0 + acc * z / (k as f64);
    }
    acc * f64::from_bits(((1023 + n as i64) as u64) << 52)
}

/// Bit-deterministic replacement for `x.powf(theta)` (`x > 0`).
fn det_pow(x: f64, theta: f64) -> f64 {
    if theta == 0.0 {
        return 1.0;
    }
    det_exp2(theta * det_log2(x))
}

/// A Zipf-distributed key sampler (for skewed KV access patterns).
#[derive(Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: DetRng,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta` (0 = uniform;
    /// 0.99 = YCSB's default skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64, seed: u64) -> Zipf {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / det_pow(i as f64, theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf {
            cdf,
            rng: DetRng::new(seed),
        }
    }

    /// Draws the next item index in `[0, n)`.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, needs no Option
    pub fn next(&mut self) -> usize {
        let r = self.rng.f64();
        self.cdf.partition_point(|&c| c < r).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_pow_matches_libm_closely() {
        // det_pow must track the libm answer to well under a part in 1e12
        // (so the Zipf CDF it feeds is statistically indistinguishable)
        // while itself using only IEEE-exact operations.
        for i in 1..=4096u32 {
            let x = i as f64;
            for theta in [0.25, 0.5, 0.75, 0.99, 1.0, 1.5] {
                let got = det_pow(x, theta);
                let want = x.powf(theta);
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-12, "det_pow({x}, {theta}) = {got}, libm {want}");
            }
        }
        // Exact cases.
        assert_eq!(det_pow(123.0, 0.0), 1.0);
        assert_eq!(det_pow(1.0, 0.99), 1.0);
        assert_eq!(det_pow(4.0, 1.0), 4.0);
        assert_eq!(det_pow(1024.0, 0.5), 32.0);
    }

    #[test]
    fn zipf_cdf_is_bit_stable() {
        // Golden bits: the E14 baselines are committed byte-identical, so
        // the zipfian draw sequence may never shift across toolchains or
        // libm versions. These constants pin the deterministic CDF.
        let z = Zipf::new(1 << 16, 0.99, 7);
        let pick = |i: usize| z.cdf[i].to_bits();
        assert_eq!(pick(0), 0x3FB4_CDDF_DB6D_E2D8u64);
        assert_eq!(pick(1 << 8), 0x3FE0_57C9_14FE_36DAu64);
        assert_eq!(pick(1 << 15), 0x3FED_FE3C_943B_DF45u64);
        assert_eq!(pick((1 << 16) - 1), 0x3FF0_0000_0000_0000u64);
    }

    #[test]
    fn teragen_is_deterministic_and_sized() {
        let a = teragen(100, 1);
        let b = teragen(100, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100 * RECORD_BYTES);
        assert_ne!(a, teragen(100, 2));
    }

    #[test]
    fn records_carry_index_in_value() {
        let buf = teragen(10, 3);
        for i in 0..10usize {
            let rec = &buf[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
            let idx = u64::from_le_bytes(rec[KEY_BYTES..KEY_BYTES + 8].try_into().unwrap());
            assert_eq!(idx, i as u64);
        }
    }

    #[test]
    fn sort_records_orders_and_permutes() {
        let mut buf = teragen(500, 9);
        let mut before: Vec<Vec<u8>> = (0..500)
            .map(|i| buf[i * RECORD_BYTES..(i + 1) * RECORD_BYTES].to_vec())
            .collect();
        sort_records(&mut buf);
        assert!(is_sorted(&buf));
        let mut after: Vec<Vec<u8>> = (0..500)
            .map(|i| buf[i * RECORD_BYTES..(i + 1) * RECORD_BYTES].to_vec())
            .collect();
        before.sort();
        after.sort();
        assert_eq!(before, after, "sorting must be a permutation");
    }

    #[test]
    fn is_sorted_detects_disorder() {
        let mut buf = teragen(50, 4);
        sort_records(&mut buf);
        assert!(is_sorted(&buf));
        buf[0..KEY_BYTES].copy_from_slice(&[0xFF; KEY_BYTES]);
        assert!(!is_sorted(&buf));
    }

    #[test]
    fn zipf_is_skewed_toward_low_indexes() {
        let mut z = Zipf::new(1000, 0.99, 5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.next()] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        assert!(
            head as f64 > 20_000.0 * 0.15,
            "top-10 of 1000 should absorb >15% of zipf(0.99) draws, got {head}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut z = Zipf::new(10, 0.0, 6);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[z.next()] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform-ish expected, got {counts:?}"
            );
        }
    }
}
