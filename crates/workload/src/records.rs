//! TeraSort-style records and key distributions.

use sim::DetRng;

/// Size of a sort record: 10-byte key + 90-byte value, as in TeraGen.
pub const RECORD_BYTES: usize = 100;
/// Size of a record key.
pub const KEY_BYTES: usize = 10;

/// Generates `count` TeraGen-style records into a flat byte buffer
/// (`count * 100` bytes). Keys are uniformly random; the value embeds the
/// record index so corruption is detectable.
pub fn teragen(count: u64, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = vec![0u8; count as usize * RECORD_BYTES];
    for i in 0..count as usize {
        let rec = &mut out[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
        rng.fill_bytes(&mut rec[..KEY_BYTES]);
        rec[KEY_BYTES..KEY_BYTES + 8].copy_from_slice(&(i as u64).to_le_bytes());
        // The rest of the value is a fixed filler pattern.
        for (j, b) in rec[KEY_BYTES + 8..].iter_mut().enumerate() {
            *b = (j % 251) as u8;
        }
    }
    out
}

/// Extracts the key of record `i` from a flat record buffer.
///
/// # Panics
///
/// Panics if the buffer does not contain record `i`.
pub fn record_key(buf: &[u8], i: usize) -> &[u8] {
    &buf[i * RECORD_BYTES..i * RECORD_BYTES + KEY_BYTES]
}

/// Checks that a flat record buffer is sorted by key.
pub fn is_sorted(buf: &[u8]) -> bool {
    let n = buf.len() / RECORD_BYTES;
    (1..n).all(|i| record_key(buf, i - 1) <= record_key(buf, i))
}

/// Sorts a flat record buffer in place by key (the "local sort" phase).
pub fn sort_records(buf: &mut [u8]) {
    debug_assert_eq!(buf.len() % RECORD_BYTES, 0);
    let n = buf.len() / RECORD_BYTES;
    let mut index: Vec<usize> = (0..n).collect();
    index.sort_by(|&a, &b| record_key(buf, a).cmp(record_key(buf, b)));
    let mut out = vec![0u8; buf.len()];
    for (pos, &src) in index.iter().enumerate() {
        out[pos * RECORD_BYTES..(pos + 1) * RECORD_BYTES]
            .copy_from_slice(&buf[src * RECORD_BYTES..(src + 1) * RECORD_BYTES]);
    }
    buf.copy_from_slice(&out);
}

/// A Zipf-distributed key sampler (for skewed KV access patterns).
#[derive(Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: DetRng,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta` (0 = uniform;
    /// 0.99 = YCSB's default skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64, seed: u64) -> Zipf {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf {
            cdf,
            rng: DetRng::new(seed),
        }
    }

    /// Draws the next item index in `[0, n)`.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, needs no Option
    pub fn next(&mut self) -> usize {
        let r = self.rng.f64();
        self.cdf.partition_point(|&c| c < r).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teragen_is_deterministic_and_sized() {
        let a = teragen(100, 1);
        let b = teragen(100, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100 * RECORD_BYTES);
        assert_ne!(a, teragen(100, 2));
    }

    #[test]
    fn records_carry_index_in_value() {
        let buf = teragen(10, 3);
        for i in 0..10usize {
            let rec = &buf[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
            let idx = u64::from_le_bytes(rec[KEY_BYTES..KEY_BYTES + 8].try_into().unwrap());
            assert_eq!(idx, i as u64);
        }
    }

    #[test]
    fn sort_records_orders_and_permutes() {
        let mut buf = teragen(500, 9);
        let mut before: Vec<Vec<u8>> = (0..500)
            .map(|i| buf[i * RECORD_BYTES..(i + 1) * RECORD_BYTES].to_vec())
            .collect();
        sort_records(&mut buf);
        assert!(is_sorted(&buf));
        let mut after: Vec<Vec<u8>> = (0..500)
            .map(|i| buf[i * RECORD_BYTES..(i + 1) * RECORD_BYTES].to_vec())
            .collect();
        before.sort();
        after.sort();
        assert_eq!(before, after, "sorting must be a permutation");
    }

    #[test]
    fn is_sorted_detects_disorder() {
        let mut buf = teragen(50, 4);
        sort_records(&mut buf);
        assert!(is_sorted(&buf));
        buf[0..KEY_BYTES].copy_from_slice(&[0xFF; KEY_BYTES]);
        assert!(!is_sorted(&buf));
    }

    #[test]
    fn zipf_is_skewed_toward_low_indexes() {
        let mut z = Zipf::new(1000, 0.99, 5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.next()] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        assert!(
            head as f64 > 20_000.0 * 0.15,
            "top-10 of 1000 should absorb >15% of zipf(0.99) draws, got {head}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut z = Zipf::new(10, 0.0, 6);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[z.next()] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform-ish expected, got {counts:?}"
            );
        }
    }
}
