//! A distributed append-only log built from RStore's memory-like API and
//! RDMA atomics: producers on different machines reserve log space with
//! one-sided fetch-and-add and write their entries with one-sided writes —
//! no log server, no coordination service.
//!
//! ```text
//! cargo run -p integration --release --example append_log
//! ```

use rdma::{CompletionQueue, CqeOpcode, RemoteMr};
use rstore::{AllocOptions, Cluster, ClusterConfig};
use sim::join_all;

const ENTRY: u64 = 64;
const PRODUCERS: usize = 4;
const ENTRIES_EACH: usize = 25;

fn main() -> rstore::Result<()> {
    let cluster = Cluster::boot(ClusterConfig {
        clients: PRODUCERS + 1,
        ..ClusterConfig::with_servers(3)
    })?;
    let sim = cluster.sim.clone();

    sim.block_on(async move {
        // The log body lives in an RStore region; the tail pointer is a
        // single u64 on the first memory server, updated with fetch-and-add.
        let owner = cluster.client(PRODUCERS).await?;
        let _log = owner
            .alloc("log/body", 1 << 20, AllocOptions::default())
            .await?;

        // Expose the tail counter directly via the verbs layer (RStore's
        // API composes with raw RDMA: the region *is* ordinary memory).
        let counter_mr: RemoteMr = {
            // A tiny dedicated region on one server, found via the master.
            let tail_region = owner.alloc("log/tail", 8, AllocOptions::default()).await?;
            let x = tail_region.desc().groups[0].replicas[0];
            RemoteMr {
                node: fabric::NodeId(x.node),
                addr: x.addr,
                len: 8,
                rkey: rdma::RKey(x.rkey),
            }
        };
        println!("log: 1 MiB body, tail counter on {}", counter_mr.node);

        // Producers append concurrently from different machines.
        let mut tasks = Vec::new();
        for p in 0..PRODUCERS {
            let client = cluster.client(p).await?;
            let body = client.map("log/body").await?;
            let dev = client.device().clone();
            let counter = counter_mr;
            tasks.push(async move {
                // One QP to the counter's host for atomics (setup, once).
                let cq = CompletionQueue::new();
                let qp = dev.connect(counter.node, rstore::DATA_SERVICE, &cq).await?;
                let result = dev.alloc(8)?;
                let entry_buf = dev.alloc(ENTRY)?;
                for i in 0..ENTRIES_EACH {
                    // Reserve: one-sided fetch-and-add on the tail.
                    qp.post_faa(1, result, counter.at(0, 8)?, ENTRY)?;
                    loop {
                        let cqe = cq.next().await;
                        if cqe.opcode == CqeOpcode::FetchAdd {
                            break;
                        }
                    }
                    let offset = dev.read_u64(result.addr)?;
                    // Fill and publish the entry with a one-sided write.
                    let mut entry = format!("producer {p} entry {i} @ {offset}").into_bytes();
                    entry.resize(ENTRY as usize, b' ');
                    dev.write_mem(entry_buf.addr, &entry)?;
                    body.write_from(offset, entry_buf).await?;
                }
                Ok::<_, rstore::RStoreError>(())
            });
        }
        for r in join_all(tasks).await {
            r?;
        }

        // A reader scans the log: every slot is filled exactly once.
        let reader = cluster.client(0).await?;
        let body = reader.map("log/body").await?;
        let total = (PRODUCERS * ENTRIES_EACH) as u64;
        let bytes = body.read(0, total * ENTRY).await?;
        let mut per_producer = vec![0usize; PRODUCERS];
        for slot in 0..total {
            let entry = &bytes[(slot * ENTRY) as usize..((slot + 1) * ENTRY) as usize];
            let text = String::from_utf8_lossy(entry);
            let text = text.trim_end();
            assert!(
                text.starts_with("producer "),
                "hole at slot {slot}: {text:?}"
            );
            let p: usize = text
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("producer id");
            per_producer[p] += 1;
        }
        println!("scanned {total} entries; per-producer counts: {per_producer:?}");
        assert!(per_producer.iter().all(|&c| c == ENTRIES_EACH));
        println!("append-only log is dense and complete — no locks, no log server");
        Ok(())
    })
}
