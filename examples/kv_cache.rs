//! A shared look-aside cache on the RStore KV facade: several application
//! machines GET/PUT against one table with a Zipf-skewed key popularity —
//! the classic memcached deployment, except every GET is a one-sided RDMA
//! read and no cache server runs any code.
//!
//! ```text
//! cargo run -p integration --release --example kv_cache
//! ```

use rstore::{AllocOptions, Cluster, ClusterConfig, KvConfig, KvTable};
use sim::join_all;
use workload::Zipf;

const APPS: usize = 4;
const KEYS: usize = 500;
const OPS_EACH: usize = 500;

fn main() -> rstore::Result<()> {
    let cluster = Cluster::boot(ClusterConfig {
        clients: APPS,
        ..ClusterConfig::with_servers(4)
    })?;
    let sim = cluster.sim.clone();

    sim.block_on(async move {
        let cfg = KvConfig {
            buckets: 2048,
            slot_bytes: 256,
            max_probe: 32,
            opts: AllocOptions {
                stripe_size: 64 * 1024,
                ..AllocOptions::default()
            },
        };
        // One machine creates and warms the cache.
        let creator = cluster.client(0).await?;
        let kv = KvTable::create(&creator, "cache", cfg).await?;
        for k in 0..KEYS {
            kv.put(
                format!("item:{k}").as_bytes(),
                format!("value-of-{k}").as_bytes(),
            )
            .await?;
        }
        println!("cache warmed with {KEYS} items across the cluster");

        // Application machines: 90% GET / 10% PUT with Zipf(0.99) keys.
        let t0 = cluster.sim.now();
        let mut tasks = Vec::new();
        for app in 0..APPS {
            let client = cluster.client(app).await?;
            tasks.push(async move {
                let kv = KvTable::open(&client, "cache", cfg.slot_bytes, cfg.max_probe).await?;
                let mut zipf = Zipf::new(KEYS, 0.99, app as u64 + 1);
                let (mut hits, mut misses) = (0u32, 0u32);
                for op in 0..OPS_EACH {
                    let k = zipf.next();
                    let key = format!("item:{k}");
                    if op % 10 == 9 {
                        kv.put(key.as_bytes(), format!("app{app}-op{op}").as_bytes())
                            .await?;
                    } else {
                        match kv.get(key.as_bytes()).await? {
                            Some(_) => hits += 1,
                            None => misses += 1,
                        }
                    }
                }
                Ok::<_, rstore::RStoreError>((hits, misses))
            });
        }
        let mut hits = 0;
        let mut misses = 0;
        for r in join_all(tasks).await {
            let (h, m) = r?;
            hits += h;
            misses += m;
        }
        let elapsed = cluster.sim.now() - t0;
        let total_ops = (APPS * OPS_EACH) as f64;
        println!(
            "{} ops from {APPS} machines in {elapsed:?} (virtual) = {:.0} ops/s/machine",
            APPS * OPS_EACH,
            total_ops / APPS as f64 / elapsed.as_secs_f64()
        );
        println!("GET hit rate: {hits}/{} ({misses} misses)", hits + misses);
        assert_eq!(misses, 0, "every key was warmed");
        Ok(())
    })
}
