//! PageRank on the RStore graph framework vs the message-passing baseline —
//! the paper's headline graph-processing scenario, end to end.
//!
//! ```text
//! cargo run -p integration --release --example pagerank
//! ```

use std::rc::Rc;

use baseline::msg_graph::{self, MsgPageRankConfig};
use fabric::{Fabric, FabricConfig};
use rdma::{RdmaConfig, RdmaDevice};
use rgraph::{pagerank, reference, GraphStore, PageRankConfig};
use rstore::{AllocOptions, Cluster, ClusterConfig, RStoreClient};
use sim::Sim;
use workload::rmat_graph;

const WORKERS: usize = 8;
const ITERS: usize = 5;

fn main() -> rstore::Result<()> {
    let graph = rmat_graph(13, 16 * (1 << 13), 99);
    println!("graph: 2^13 vertices, {} edges (RMAT power-law)", graph.m());

    // --- RStore framework ---------------------------------------------------
    let cluster = Cluster::boot(ClusterConfig {
        clients: WORKERS,
        ..ClusterConfig::with_servers(8)
    })?;
    let sim = cluster.sim.clone();
    let g = graph.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let outcome = sim.block_on(async move {
        let loader = RStoreClient::connect(&devs[0], master).await?;
        GraphStore::publish(
            &loader,
            "pr",
            &g,
            AllocOptions {
                stripe_size: 1 << 20,
                ..AllocOptions::default()
            },
        )
        .await?;
        pagerank::run(
            &devs,
            master,
            "pr",
            PageRankConfig {
                iters: ITERS,
                ..PageRankConfig::default()
            },
        )
        .await
    })?;
    println!(
        "RStore framework : total {} | superstep mean {}",
        bench_fmt(outcome.total),
        bench_fmt(outcome.superstep_mean())
    );

    // Verify against the single-node reference.
    let expect = reference::pagerank(&graph, ITERS, 0.85);
    let max_err = outcome
        .ranks
        .iter()
        .zip(&expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max deviation from reference: {max_err:.2e}");
    assert!(max_err < 1e-12);

    // --- message-passing baseline --------------------------------------------
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), FabricConfig::default());
    let devs: Vec<RdmaDevice> = (0..WORKERS)
        .map(|_| RdmaDevice::new(&fabric, RdmaConfig::default()))
        .collect();
    let g = Rc::new(graph);
    let msg = sim.block_on(async move {
        msg_graph::run(
            &devs,
            g,
            MsgPageRankConfig {
                iters: ITERS,
                ..MsgPageRankConfig::default()
            },
        )
        .await
    })?;
    println!(
        "message-passing  : total {} | superstep mean {}",
        bench_fmt(msg.total),
        bench_fmt(msg.superstep_mean())
    );
    println!(
        "speedup: {:.2}x (paper band: 2.6-4.2x on power-law graphs)",
        msg.total.as_secs_f64() / outcome.total.as_secs_f64()
    );
    Ok(())
}

fn bench_fmt(d: std::time::Duration) -> String {
    if d.as_millis() > 0 {
        format!("{:.2}ms", d.as_nanos() as f64 / 1e6)
    } else {
        format!("{:.2}us", d.as_nanos() as f64 / 1e3)
    }
}
