//! Quickstart: boot a simulated RStore cluster, allocate a region of
//! distributed DRAM, and use it like memory.
//!
//! ```text
//! cargo run -p integration --release --example quickstart
//! ```

use rstore::{AllocOptions, Cluster, ClusterConfig, Policy};

fn main() -> rstore::Result<()> {
    // Four memory servers, two client machines, FDR-calibrated fabric.
    let cluster = Cluster::boot(ClusterConfig {
        clients: 2,
        ..ClusterConfig::with_servers(4)
    })?;
    let sim = cluster.sim.clone();

    sim.block_on(async move {
        // --- control path: pay once ---------------------------------------
        let alice = cluster.client(0).await?;
        let region = alice
            .alloc(
                "demo/numbers",
                64 << 20, // 64 MiB, striped over all four servers
                AllocOptions {
                    stripe_size: 4 << 20,
                    policy: Policy::RoundRobin,
                    ..AllocOptions::default()
                },
            )
            .await?;
        println!(
            "allocated {:?}: {} stripes across the cluster",
            region.name(),
            region.desc().groups.len()
        );

        // --- data path: one-sided reads and writes ------------------------
        let t0 = cluster.sim.now();
        region.write(0, b"The quick brown fox").await?;
        region.write(32 << 20, &[42u8; 1 << 20]).await?;
        println!("writes took {:?} (virtual)", cluster.sim.now() - t0);

        // A second machine maps the same region by name and sees the data.
        let bob = cluster.client(1).await?;
        let view = bob.map("demo/numbers").await?;
        let t0 = cluster.sim.now();
        let head = view.read(0, 19).await?;
        println!(
            "bob read {:?} in {:?} (virtual)",
            String::from_utf8_lossy(&head),
            cluster.sim.now() - t0
        );
        assert_eq!(head, b"The quick brown fox");

        let stats = alice.stats().await?;
        println!(
            "cluster: {} servers, {} regions, {}/{} bytes used",
            stats.servers, stats.regions, stats.used, stats.capacity
        );

        alice.free("demo/numbers").await?;
        println!("region freed; capacity reclaimed");
        Ok(())
    })
}
