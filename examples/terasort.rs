//! The Key-Value sorter end to end: a real, verified sort at laptop scale,
//! then a paper-scale fluid run against the Hadoop TeraSort model.
//!
//! ```text
//! cargo run -p integration --release --example terasort
//! ```

use baseline::hadoop::{terasort_time, HadoopConfig};
use fabric::FabricConfig;
use rsort::{distributed, SortConfig, SortMode};
use rstore::{AllocOptions, Cluster, ClusterConfig, RStoreClient};
use workload::{is_sorted, teragen, RECORD_BYTES};

fn main() -> rstore::Result<()> {
    // --- part 1: real data, fully verified --------------------------------
    let cluster = Cluster::boot(ClusterConfig {
        clients: 8,
        ..ClusterConfig::with_servers(4)
    })?;
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let (records, secs, sorted) = sim.block_on(async move {
        let loader = RStoreClient::connect(&devs[0], master).await?;
        let cfg = SortConfig {
            opts: AllocOptions {
                stripe_size: 1 << 20,
                ..AllocOptions::default()
            },
            ..SortConfig::default()
        };
        let input = teragen(200_000, 7); // 20 MB of 100-byte records
        distributed::load_input(&loader, &cfg, &input).await?;
        let outcome = distributed::run(&devs, master, cfg).await?;
        let out = loader.map("sort/output").await?;
        let bytes = out.read(0, out.size()).await?;
        Ok::<_, rstore::RStoreError>((
            outcome.records,
            outcome.total.as_secs_f64(),
            is_sorted(&bytes),
        ))
    })?;
    println!("real sort: {records} records in {secs:.4}s (virtual), sorted = {sorted}");
    assert!(sorted);

    // --- part 2: 64 GiB fluid run vs Hadoop model ---------------------------
    let gib = 64u64;
    let cluster = Cluster::boot(ClusterConfig {
        clients: 12,
        fabric: FabricConfig::fluid(),
        ..ClusterConfig::with_servers(12)
    })?;
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let outcome = sim.block_on(async move {
        let loader = RStoreClient::connect(&devs[0], master).await?;
        let cfg = SortConfig {
            mode: SortMode::Fluid,
            io_chunk: 64 << 20,
            opts: AllocOptions {
                stripe_size: 64 << 20,
                ..AllocOptions::default()
            },
            ..SortConfig::default()
        };
        distributed::create_fluid_input(&loader, &cfg, (gib << 30) / RECORD_BYTES as u64).await?;
        distributed::run(&devs, master, cfg).await
    })?;
    let hadoop = terasort_time(&HadoopConfig::default(), gib << 30);
    println!(
        "rsort  {gib} GiB on 12 machines: {:.1}s  (partition {:.1}s, shuffle {:.1}s, sort {:.1}s)",
        outcome.total.as_secs_f64(),
        outcome.phases.partition.as_secs_f64(),
        outcome.phases.shuffle.as_secs_f64(),
        outcome.phases.local_sort.as_secs_f64(),
    );
    println!(
        "hadoop {gib} GiB on 12 nodes   : {:.1}s  -> rsort is {:.1}x faster",
        hadoop.total().as_secs_f64(),
        hadoop.total().as_secs_f64() / outcome.total.as_secs_f64()
    );
    Ok(())
}
