//! Steady-state allocation discipline for the raw-speed op path.
//!
//! After a short warmup (staging pools filled, hint caches and hash maps
//! sized, QPs dialed), every data-path op must settle to a *flat* per-op
//! host-heap allocation count — the hoisted-buffer discipline means no
//! per-op staging or scratch-`Vec` churn — and stay at or under a pinned
//! ceiling. The remaining floor is the simulator's own machinery (oneshot
//! completion channels, wire-message payload copies, spawned backstop
//! guards), which a real verbs stack does not pay; the pins keep that floor
//! from silently growing.
//!
//! This is the only test in the binary so the counting global allocator
//! sees no concurrent test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rstore::{AllocOptions, ClientConfig, Cluster, ClusterConfig, KvConfig, KvTable};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `$body` for 12 rounds and pins the *minimum* per-round allocation
/// count of the last 6 at `$ceiling`: a per-op churn regression (a fresh
/// `Vec` or staging buffer per op) lifts every round, including the
/// minimum, while the occasional +4..8 spikes from executor bookkeeping
/// (the long-lived backstop timer guards keep growing the timer heap, whose
/// buffer doubles on boundaries the ops don't control) only move the
/// maximum. A loose band still catches wild nondeterminism.
macro_rules! steady {
    ($name:expr, $ceiling:expr, $body:expr) => {{
        let mut counts = [0u64; 12];
        for c in counts.iter_mut() {
            let before = allocs();
            $body;
            *c = allocs() - before;
        }
        let tail = &counts[6..];
        let (lo, hi) = (
            *tail.iter().min().expect("6 rounds"),
            *tail.iter().max().expect("6 rounds"),
        );
        assert!(
            hi - lo <= 16,
            "{}: steady state not flat: {:?}",
            $name,
            counts
        );
        assert!(
            lo <= $ceiling,
            "{}: {} allocations/op exceeds the pinned floor {} (rounds: {:?})",
            $name,
            lo,
            $ceiling,
            counts
        );
    }};
}

#[test]
fn steady_state_ops_hold_allocation_floor() {
    let cluster = Cluster::boot(ClusterConfig {
        clients: 1,
        // The raw-speed configuration: scatter-gather WRs for striped IO,
        // inline posting for small slot publishes.
        rdma: rdma::RdmaConfig {
            inline_max: 256,
            ..rdma::RdmaConfig::default()
        },
        client: ClientConfig {
            sge: true,
            ..ClientConfig::default()
        },
        ..ClusterConfig::with_servers(3)
    })
    .expect("boot");
    let sim = cluster.sim.clone();
    sim.block_on(async move {
        let client = cluster.client(0).await.unwrap();
        let dev = client.device().clone();
        let plain = client
            .alloc(
                "raw/plain",
                64 * 1024,
                AllocOptions {
                    stripe_size: 4096,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        let ck = client
            .alloc(
                "raw/ck",
                64 * 1024,
                AllocOptions {
                    stripe_size: 4096,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        let kv = KvTable::create(&client, "raw/kv", KvConfig::default())
            .await
            .unwrap();

        // A 4-stripe IO buffer: the scatter-gather path groups its pieces
        // into multi-element WRs.
        let io = dev.alloc(16 * 1024).unwrap();
        dev.write_mem(io.addr, &vec![7u8; 16 * 1024]).unwrap();
        plain.write_from(0, io).await.unwrap();
        ck.write_from(0, io).await.unwrap();
        let keys: Vec<Vec<u8>> = (0..8).map(|i| format!("key-{i}").into_bytes()).collect();
        for k in &keys {
            kv.put(k, &[9u8; 32]).await.unwrap();
        }
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

        // Region ops (plain + checksummed), 4 stripes per IO.
        steady!("region.write", 197, plain.write_from(0, io).await.unwrap());
        steady!("region.read", 202, plain.read_into(0, io).await.unwrap());
        steady!("region.write_ck", 210, ck.write_from(0, io).await.unwrap());
        steady!("region.read_ck", 206, ck.read_into(0, io).await.unwrap());

        // KV ops. A warm put is CAS + inline WRITE, so this also pins the
        // one-sided CAS path's allocation floor.
        steady!("kv.get", 40, {
            assert!(kv.get(&keys[0]).await.unwrap().is_some());
        });
        steady!("kv.put", 71, kv.put(&keys[0], &[9u8; 32]).await.unwrap());
        steady!("kv.multi_get", 211, {
            let vals = kv.multi_get(&key_refs).await.unwrap();
            assert!(vals.iter().all(Option::is_some));
        });
        steady!("kv.delete+put", 220, {
            assert!(kv.delete(&keys[1]).await.unwrap());
            kv.put(&keys[1], &[9u8; 32]).await.unwrap();
        });

        dev.free(io).unwrap();
    });
}
