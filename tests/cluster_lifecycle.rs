//! Cross-crate integration: full cluster lifecycle scenarios.

use rstore::{AllocOptions, Cluster, ClusterConfig, Policy, RStoreClient, RStoreError};

fn boot(servers: usize, clients: usize) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients,
        ..ClusterConfig::with_servers(servers)
    })
    .expect("boot")
}

#[test]
fn many_regions_many_clients() {
    let cluster = boot(4, 4);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        // Every client allocates its own regions and writes a signature.
        let mut clients = Vec::new();
        for (i, dev) in devs.iter().enumerate() {
            let c = RStoreClient::connect(dev, master).await.unwrap();
            for r in 0..3 {
                let region = c
                    .alloc(&format!("c{i}/r{r}"), 256 * 1024, AllocOptions::default())
                    .await
                    .unwrap();
                region
                    .write(0, format!("sig-{i}-{r}").as_bytes())
                    .await
                    .unwrap();
            }
            clients.push(c);
        }
        // Every client reads every other client's regions.
        for (i, c) in clients.iter().enumerate() {
            for j in 0..clients.len() {
                for r in 0..3 {
                    let region = c.map(&format!("c{j}/r{r}")).await.unwrap();
                    let sig = region.read(0, 7).await.unwrap();
                    assert_eq!(sig, format!("sig-{j}-{r}").as_bytes(), "client {i} view");
                }
            }
        }
        let stats = clients[0].stats().await.unwrap();
        assert_eq!(stats.regions, 12);
    });
}

#[test]
fn free_then_reallocate_reuses_capacity() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        // Fill most of the cluster, free, repeat: capacity must be stable.
        let big = 16u64 << 30; // 16 GiB across 2 x 32 GiB donations
        for round in 0..5 {
            let opts = AllocOptions {
                synthetic: true,
                ..AllocOptions::default()
            };
            let name = format!("cycle{round}");
            c.alloc(&name, big, opts).await.unwrap();
            let stats = c.stats().await.unwrap();
            assert_eq!(stats.used, big, "round {round}");
            c.free(&name).await.unwrap();
            let stats = c.stats().await.unwrap();
            assert_eq!(stats.used, 0, "round {round}");
        }
    });
}

#[test]
fn placement_policies_differ_but_work() {
    let cluster = boot(6, 1);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        for (name, policy) in [
            ("rr", Policy::RoundRobin),
            ("rnd", Policy::Random),
            ("cap", Policy::CapacityWeighted),
        ] {
            let region = c
                .alloc(
                    name,
                    1 << 20,
                    AllocOptions {
                        stripe_size: 64 * 1024,
                        policy,
                        ..AllocOptions::default()
                    },
                )
                .await
                .unwrap();
            region.write(12345, b"policy check").await.unwrap();
            assert_eq!(region.read(12345, 12).await.unwrap(), b"policy check");
        }
        // Round-robin must spread over all six servers.
        let rr = c.map("rr").await.unwrap();
        let mut nodes: Vec<u32> = rr
            .desc()
            .groups
            .iter()
            .map(|g| g.replicas[0].node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 6);
    });
}

#[test]
fn replicated_writes_visible_on_every_replica() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let server_nodes: Vec<_> = cluster.servers.iter().map(|s| s.node()).collect();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let region = c
            .alloc(
                "mirrored",
                64 * 1024,
                AllocOptions {
                    replicas: 3,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, b"three copies").await.unwrap();
        // Kill any two of the three servers: the data must still be there.
        fabric.set_node_up(server_nodes[0], false);
        fabric.set_node_up(server_nodes[1], false);
        assert_eq!(region.read(0, 12).await.unwrap(), b"three copies");
    });
}

#[test]
fn replication_factor_exceeding_servers_fails() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let err = c
            .alloc(
                "over",
                4096,
                AllocOptions {
                    replicas: 3,
                    ..AllocOptions::default()
                },
            )
            .await
            .err()
            .unwrap();
        assert!(matches!(err, RStoreError::NotEnoughServers { .. }));
    });
}

#[test]
fn region_descriptor_is_stable_across_lookups() {
    let cluster = boot(3, 2);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let a = RStoreClient::connect(&devs[0], master).await.unwrap();
        let b = RStoreClient::connect(&devs[1], master).await.unwrap();
        a.alloc("stable", 1 << 20, AllocOptions::default())
            .await
            .unwrap();
        let d1 = a.lookup("stable").await.unwrap();
        let d2 = b.lookup("stable").await.unwrap();
        assert_eq!(d1, d2, "all clients must see identical placement");
    });
}

#[test]
fn io_throughput_accounting_matches_fabric() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let metrics = cluster.fabric.metrics().clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let region = c
            .alloc("counted", 1 << 20, AllocOptions::default())
            .await
            .unwrap();
        metrics.reset();
        region.write(0, &vec![1u8; 512 * 1024]).await.unwrap();
        let written = metrics.counter("rstore.write_bytes");
        assert_eq!(written, 512 * 1024);
        region.read(0, 128 * 1024).await.unwrap();
        assert_eq!(metrics.counter("rstore.read_bytes"), 128 * 1024);
    });
}
