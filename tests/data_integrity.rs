//! End-to-end data integrity: at-rest corruption injection, checksummed
//! reads with failover, the background scrubber, and repair back to Healthy.

use std::time::Duration;

use fabric::{FaultPlan, NodeId};
use rstore::{
    AllocOptions, Cluster, ClusterConfig, KvConfig, KvTable, MasterConfig, RStoreClient,
    RStoreError, RegionState, ServerConfig,
};
use sim::DetRng;

fn boot(servers: usize, scrub: bool) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients: 1,
        // Short intervals so corruption handling converges quickly
        // (virtual time).
        master: MasterConfig {
            lease: Duration::from_millis(50),
            sweep_interval: Duration::from_millis(20),
            repair_interval: Duration::from_millis(40),
            scrub,
            scrub_interval: Duration::from_millis(50),
            ..MasterConfig::default()
        },
        server: ServerConfig {
            heartbeat: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        ..ClusterConfig::with_servers(servers)
    })
    .expect("boot")
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
}

#[test]
fn checksummed_region_round_trips_partial_and_spanning_io() {
    let cluster = boot(3, true);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 64 * 1024u64;
        let region = c
            .alloc(
                "ck",
                size,
                AllocOptions {
                    stripe_size: 8 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        assert!(region.desc().checksums);

        // Mirror every write into a local model and compare afterwards.
        let mut model = pattern(size as usize);
        region.write(0, &model).await.unwrap();
        // Partial overwrite inside one stripe (read-modify-write path).
        let patch = vec![0xABu8; 100];
        region.write(300, &patch).await.unwrap();
        model[300..400].copy_from_slice(&patch);
        // Overwrite spanning a stripe boundary.
        let span = vec![0xCDu8; 4096];
        region.write(8 * 1024 - 1000, &span).await.unwrap();
        model[8 * 1024 - 1000..8 * 1024 - 1000 + 4096].copy_from_slice(&span);

        assert_eq!(region.read(0, size).await.unwrap(), model);

        // Raw zero-copy writes would bypass trailer maintenance.
        let buf = devs[0].alloc(4096).unwrap();
        let err = region.start_write(0, buf).err().unwrap();
        assert!(matches!(err, RStoreError::Protocol(_)), "got {err:?}");
        devs[0].free(buf).unwrap();

        // Freeing returns every physical byte, trailers included.
        c.free("ck").await.unwrap();
        assert_eq!(c.stats().await.unwrap().used, 0);
    });
}

#[test]
fn corrupted_replica_read_fails_over_and_region_repairs() {
    let cluster = boot(4, true);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 256 * 1024u64;
        let data = pattern(size as usize);
        let region = c
            .alloc(
                "guarded",
                size,
                AllocOptions {
                    stripe_size: 64 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();

        // Flip bits at rest on the server holding group 0's first replica.
        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0xC0)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 32)
            .install(&fabric);
        s.sleep(Duration::from_millis(5)).await;
        let m = fabric.metrics();
        assert_eq!(m.counter("integrity.injected"), 32);

        // Reads still return the written bytes: verification fails over to
        // the intact replica and reports the bad one.
        assert_eq!(region.read(0, size).await.unwrap(), data);
        assert!(m.counter("integrity.read_mismatch") >= 1);

        // The master re-replicates the damaged extents and the region
        // returns to Healthy.
        s.sleep(Duration::from_secs(2)).await;
        assert!(m.counter("integrity.detected") >= 1);
        let desc = c.lookup("guarded").await.unwrap();
        assert_eq!(desc.state, RegionState::Healthy, "repair must complete");
        let remapped = c.map("guarded").await.unwrap();
        assert_eq!(remapped.read(0, size).await.unwrap(), data);
    });
}

#[test]
fn scrubber_finds_corruption_without_any_reads() {
    let cluster = boot(3, true);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 128 * 1024u64;
        let data = pattern(size as usize);
        let region = c
            .alloc(
                "swept",
                size,
                AllocOptions {
                    stripe_size: 32 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();

        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0x5C)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 16)
            .install(&fabric);

        // No client IO at all: detection must come from the scrub sweep.
        s.sleep(Duration::from_secs(2)).await;
        let m = fabric.metrics();
        assert!(m.counter("integrity.scrub_passes") >= 1);
        assert!(m.counter("integrity.scrub.mismatch") >= 1);
        assert!(m.counter("integrity.detected") >= 1);
        assert_eq!(m.counter("integrity.read_mismatch"), 0);

        // ...and repair still restores the region.
        let desc = c.lookup("swept").await.unwrap();
        assert_eq!(desc.state, RegionState::Healthy, "repair must complete");
        assert_eq!(region.read(0, size).await.unwrap(), data);
    });
}

#[test]
fn all_replicas_corrupt_surfaces_structured_error() {
    let cluster = boot(2, false);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 32 * 1024u64;
        let region = c
            .alloc(
                "fragile",
                size,
                AllocOptions {
                    stripe_size: 32 * 1024,
                    replicas: 1,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &pattern(size as usize)).await.unwrap();

        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0xF1)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 8)
            .install(&fabric);
        s.sleep(Duration::from_millis(5)).await;

        // With no intact replica left, the read surfaces the damage instead
        // of returning wrong bytes.
        let err = region.read(0, size).await.err().unwrap();
        match err {
            RStoreError::CorruptionDetected { region, node, .. } => {
                assert_eq!(region, "fragile");
                assert_eq!(node, victim);
            }
            other => panic!("expected CorruptionDetected, got {other:?}"),
        }
    });
}

#[test]
fn kv_slot_corruption_storm_never_panics_clients() {
    // Adversarial property test for the slot codec: seeded random byte
    // flips — header words and payload alike — land on the live KV data
    // region between client ops. KV tables carry no stripe checksums (the
    // seqlock replaces them), so a flip that forges a structurally valid
    // slot may legally surface stale/garbage bytes; what must NEVER happen
    // is a client panic (e.g. a slice out of bounds on a forged klen/vlen)
    // or an unstructured error. Before the codec hardening, a flipped
    // length word panicked `parse_slot`.
    let cluster = boot(3, false);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let cfg = KvConfig {
            buckets: 64,
            slot_bytes: 128,
            max_probe: 16,
            opts: AllocOptions {
                stripe_size: 1024,
                replicas: 1,
                ..AllocOptions::default()
            },
        };
        let table = KvTable::create(&c, "storm", cfg).await.unwrap();
        let key = |i: u64| format!("storm{i:03}").into_bytes();
        for i in 0..48u64 {
            table.put(&key(i), &pattern(40)).await.unwrap();
        }

        // A raw mapping of the table's current-generation data region: the
        // very bytes every client op reads.
        let raw = c.map("storm@g1").await.unwrap();
        let size = 64 * 128u64;
        let mut rng = DetRng::new(0xAD5107);
        for _ in 0..120 {
            // Flip 1..=8 bytes somewhere in the live image.
            let mut junk = [0u8; 8];
            rng.fill_bytes(&mut junk);
            let n = rng.range_u64(1, 9) as usize;
            let off = rng.range_u64(0, size - n as u64);
            raw.write(off, &junk[..n]).await.unwrap();

            // A burst of ops right on top of the damage. Every outcome must
            // be a structured Result — the match below cannot catch a
            // panic, so merely completing the storm is the property.
            for _ in 0..4 {
                let k = key(rng.range_u64(0, 64));
                let outcome = match rng.range_u64(0, 4) {
                    0 => table.get(&k).await.map(|_| ()),
                    1 => table.put(&k, b"fresh").await,
                    2 => table.delete(&k).await.map(|_| ()),
                    _ => {
                        let ks = [&k[..], b"storm000", b"absent"];
                        table.multi_get(&ks).await.map(|_| ())
                    }
                };
                if let Err(e) = outcome {
                    assert!(
                        matches!(
                            e,
                            RStoreError::CorruptionDetected { .. }
                                | RStoreError::Protocol(_)
                                | RStoreError::Io(_)
                                | RStoreError::InsufficientCapacity { .. }
                        ),
                        "storm op must fail structurally, got {e:?}"
                    );
                }
            }
        }
        // The storm must actually have exercised the corruption path, not
        // just missed every slot.
        assert!(
            fabric.metrics().counter("kv.slot_corrupt") >= 1,
            "structural validation never fired; the storm was too gentle"
        );

        // The connection (device, QPs, mappings) survives: a fresh table on
        // the same client works end to end.
        let t2 = KvTable::create(&c, "after", cfg).await.unwrap();
        t2.put(b"alive", b"yes").await.unwrap();
        assert_eq!(
            t2.get(b"alive").await.unwrap().as_deref(),
            Some(&b"yes"[..])
        );
    });
}

#[test]
fn checksummed_random_reads_never_return_silent_garbage() {
    // The checksummed counterpart of the storm: with trailers on, a seeded
    // spray of at-rest flips means every subsequent read — random offset,
    // random length, stripe-spanning or not — must return either the exact
    // written bytes or a structured `CorruptionDetected`. Silent garbage is
    // the one forbidden outcome.
    let cluster = boot(2, false);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 64 * 1024u64;
        let model = pattern(size as usize);
        let region = c
            .alloc(
                "advck",
                size,
                AllocOptions {
                    stripe_size: 4096,
                    replicas: 1,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &model).await.unwrap();

        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0xADC)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 48)
            .install(&fabric);
        s.sleep(Duration::from_millis(5)).await;
        assert_eq!(fabric.metrics().counter("integrity.injected"), 48);

        let mut rng = DetRng::new(0xADC2);
        let mut detected = 0u64;
        for _ in 0..200 {
            let off = rng.range_u64(0, size - 1);
            let len = rng.range_u64(1, (size - off).min(9000) + 1);
            match region.read(off, len).await {
                Ok(bytes) => assert_eq!(
                    bytes,
                    &model[off as usize..(off + len) as usize],
                    "verified read returned wrong bytes at {off}+{len}"
                ),
                Err(RStoreError::CorruptionDetected { region, .. }) => {
                    assert_eq!(region, "advck");
                    detected += 1;
                }
                Err(other) => panic!("expected clean data or CorruptionDetected, got {other:?}"),
            }
        }
        assert!(
            detected >= 1,
            "48 at-rest flips with one replica must trip at least one read"
        );
    });
}

#[test]
fn clean_cluster_reports_zero_corruption() {
    let cluster = boot(3, true);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 128 * 1024u64;
        let data = pattern(size as usize);
        let region = c
            .alloc(
                "clean",
                size,
                AllocOptions {
                    stripe_size: 32 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();
        for _ in 0..4 {
            s.sleep(Duration::from_millis(200)).await;
            assert_eq!(region.read(0, size).await.unwrap(), data);
        }
        // Several scrub passes over live traffic: zero false positives.
        let m = fabric.metrics();
        assert!(m.counter("integrity.scrub_passes") >= 4);
        assert_eq!(m.counter("integrity.injected"), 0);
        assert_eq!(m.counter("integrity.read_mismatch"), 0);
        assert_eq!(m.counter("integrity.scrub.mismatch"), 0);
        assert_eq!(m.counter("integrity.detected"), 0);
        assert_eq!(c.lookup("clean").await.unwrap().state, RegionState::Healthy);
    });
}
