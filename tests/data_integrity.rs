//! End-to-end data integrity: at-rest corruption injection, checksummed
//! reads with failover, the background scrubber, and repair back to Healthy.

use std::time::Duration;

use fabric::{FaultPlan, NodeId};
use rstore::{
    AllocOptions, Cluster, ClusterConfig, MasterConfig, RStoreClient, RStoreError, RegionState,
    ServerConfig,
};

fn boot(servers: usize, scrub: bool) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients: 1,
        // Short intervals so corruption handling converges quickly
        // (virtual time).
        master: MasterConfig {
            lease: Duration::from_millis(50),
            sweep_interval: Duration::from_millis(20),
            repair_interval: Duration::from_millis(40),
            scrub,
            scrub_interval: Duration::from_millis(50),
            ..MasterConfig::default()
        },
        server: ServerConfig {
            heartbeat: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        ..ClusterConfig::with_servers(servers)
    })
    .expect("boot")
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
}

#[test]
fn checksummed_region_round_trips_partial_and_spanning_io() {
    let cluster = boot(3, true);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 64 * 1024u64;
        let region = c
            .alloc(
                "ck",
                size,
                AllocOptions {
                    stripe_size: 8 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        assert!(region.desc().checksums);

        // Mirror every write into a local model and compare afterwards.
        let mut model = pattern(size as usize);
        region.write(0, &model).await.unwrap();
        // Partial overwrite inside one stripe (read-modify-write path).
        let patch = vec![0xABu8; 100];
        region.write(300, &patch).await.unwrap();
        model[300..400].copy_from_slice(&patch);
        // Overwrite spanning a stripe boundary.
        let span = vec![0xCDu8; 4096];
        region.write(8 * 1024 - 1000, &span).await.unwrap();
        model[8 * 1024 - 1000..8 * 1024 - 1000 + 4096].copy_from_slice(&span);

        assert_eq!(region.read(0, size).await.unwrap(), model);

        // Raw zero-copy writes would bypass trailer maintenance.
        let buf = devs[0].alloc(4096).unwrap();
        let err = region.start_write(0, buf).err().unwrap();
        assert!(matches!(err, RStoreError::Protocol(_)), "got {err:?}");
        devs[0].free(buf).unwrap();

        // Freeing returns every physical byte, trailers included.
        c.free("ck").await.unwrap();
        assert_eq!(c.stats().await.unwrap().used, 0);
    });
}

#[test]
fn corrupted_replica_read_fails_over_and_region_repairs() {
    let cluster = boot(4, true);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 256 * 1024u64;
        let data = pattern(size as usize);
        let region = c
            .alloc(
                "guarded",
                size,
                AllocOptions {
                    stripe_size: 64 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();

        // Flip bits at rest on the server holding group 0's first replica.
        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0xC0)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 32)
            .install(&fabric);
        s.sleep(Duration::from_millis(5)).await;
        let m = fabric.metrics();
        assert_eq!(m.counter("integrity.injected"), 32);

        // Reads still return the written bytes: verification fails over to
        // the intact replica and reports the bad one.
        assert_eq!(region.read(0, size).await.unwrap(), data);
        assert!(m.counter("integrity.read_mismatch") >= 1);

        // The master re-replicates the damaged extents and the region
        // returns to Healthy.
        s.sleep(Duration::from_secs(2)).await;
        assert!(m.counter("integrity.detected") >= 1);
        let desc = c.lookup("guarded").await.unwrap();
        assert_eq!(desc.state, RegionState::Healthy, "repair must complete");
        let remapped = c.map("guarded").await.unwrap();
        assert_eq!(remapped.read(0, size).await.unwrap(), data);
    });
}

#[test]
fn scrubber_finds_corruption_without_any_reads() {
    let cluster = boot(3, true);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 128 * 1024u64;
        let data = pattern(size as usize);
        let region = c
            .alloc(
                "swept",
                size,
                AllocOptions {
                    stripe_size: 32 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();

        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0x5C)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 16)
            .install(&fabric);

        // No client IO at all: detection must come from the scrub sweep.
        s.sleep(Duration::from_secs(2)).await;
        let m = fabric.metrics();
        assert!(m.counter("integrity.scrub_passes") >= 1);
        assert!(m.counter("integrity.scrub.mismatch") >= 1);
        assert!(m.counter("integrity.detected") >= 1);
        assert_eq!(m.counter("integrity.read_mismatch"), 0);

        // ...and repair still restores the region.
        let desc = c.lookup("swept").await.unwrap();
        assert_eq!(desc.state, RegionState::Healthy, "repair must complete");
        assert_eq!(region.read(0, size).await.unwrap(), data);
    });
}

#[test]
fn all_replicas_corrupt_surfaces_structured_error() {
    let cluster = boot(2, false);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 32 * 1024u64;
        let region = c
            .alloc(
                "fragile",
                size,
                AllocOptions {
                    stripe_size: 32 * 1024,
                    replicas: 1,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &pattern(size as usize)).await.unwrap();

        let victim = region.desc().groups[0].replicas[0].node;
        FaultPlan::new(0xF1)
            .corrupt_at(Duration::from_millis(1), NodeId(victim), 8)
            .install(&fabric);
        s.sleep(Duration::from_millis(5)).await;

        // With no intact replica left, the read surfaces the damage instead
        // of returning wrong bytes.
        let err = region.read(0, size).await.err().unwrap();
        match err {
            RStoreError::CorruptionDetected { region, node, .. } => {
                assert_eq!(region, "fragile");
                assert_eq!(node, victim);
            }
            other => panic!("expected CorruptionDetected, got {other:?}"),
        }
    });
}

#[test]
fn clean_cluster_reports_zero_corruption() {
    let cluster = boot(3, true);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let size = 128 * 1024u64;
        let data = pattern(size as usize);
        let region = c
            .alloc(
                "clean",
                size,
                AllocOptions {
                    stripe_size: 32 * 1024,
                    replicas: 2,
                    checksums: true,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();
        for _ in 0..4 {
            s.sleep(Duration::from_millis(200)).await;
            assert_eq!(region.read(0, size).await.unwrap(), data);
        }
        // Several scrub passes over live traffic: zero false positives.
        let m = fabric.metrics();
        assert!(m.counter("integrity.scrub_passes") >= 4);
        assert_eq!(m.counter("integrity.injected"), 0);
        assert_eq!(m.counter("integrity.read_mismatch"), 0);
        assert_eq!(m.counter("integrity.scrub.mismatch"), 0);
        assert_eq!(m.counter("integrity.detected"), 0);
        assert_eq!(c.lookup("clean").await.unwrap().state, RegionState::Healthy);
    });
}
