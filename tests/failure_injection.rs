//! Failure injection across the stack: dead servers, dead masters,
//! partitions, and recovery.

use std::time::Duration;

use rstore::{AllocOptions, Cluster, ClusterConfig, MasterConfig, RStoreClient, RStoreError};

fn boot(servers: usize, clients: usize) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients,
        // Short leases so failure tests converge quickly (virtual time).
        master: MasterConfig {
            lease: Duration::from_millis(50),
            sweep_interval: Duration::from_millis(20),
            ..MasterConfig::default()
        },
        server: rstore::ServerConfig {
            heartbeat: Duration::from_millis(10),
            ..rstore::ServerConfig::default()
        },
        ..ClusterConfig::with_servers(servers)
    })
    .expect("boot")
}

#[test]
fn unreplicated_io_to_dead_server_errors_but_does_not_hang() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let region = c
            .alloc(
                "doomed",
                256 * 1024,
                AllocOptions {
                    stripe_size: 4096,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &[9u8; 64 * 1024]).await.unwrap();
        fabric.set_node_up(victim, false);
        // Reads spanning the dead server must surface an IO error.
        let err = region.read(0, 64 * 1024).await.err().unwrap();
        assert!(matches!(err, RStoreError::Io(_)), "got {err:?}");
    });
}

#[test]
fn master_detects_death_and_recovery() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let master_handle = cluster.master.clone();
    let victim = cluster.servers[1].node();
    let s = sim.clone();
    sim.block_on(async move {
        assert_eq!(master_handle.live_servers(), 3);
        fabric.set_node_up(victim, false);
        s.sleep(Duration::from_millis(200)).await;
        assert_eq!(master_handle.live_servers(), 2, "lease must expire");
        fabric.set_node_up(victim, true);
        // Recovery is bounded by the RC retry budget (~2 s) before the
        // server's heartbeat loop notices the broken connection and redials.
        s.sleep(Duration::from_secs(5)).await;
        assert_eq!(master_handle.live_servers(), 3, "heartbeats must revive");
    });
}

#[test]
fn allocation_avoids_dead_servers() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        fabric.set_node_up(victim, false);
        s.sleep(Duration::from_millis(200)).await;
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let region = c
            .alloc(
                "survivors",
                1 << 20,
                AllocOptions {
                    stripe_size: 64 * 1024,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        // Every extent must be on one of the two live servers.
        for g in &region.desc().groups {
            for x in &g.replicas {
                assert_ne!(x.node, victim.0, "placed on a dead server");
            }
        }
        region.write(0, b"alive").await.unwrap();
        assert_eq!(region.read(0, 5).await.unwrap(), b"alive");
    });
}

#[test]
fn master_death_spares_data_path_but_kills_control_path() {
    let cluster = boot(3, 2);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let master_node = cluster.master_node();
    let devs = cluster.client_devs.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master_node).await.unwrap();
        let region = c
            .alloc("pre-mapped", 1 << 20, AllocOptions::default())
            .await
            .unwrap();
        region.write(0, b"before death").await.unwrap();
        fabric.set_node_up(master_node, false);

        // Data path: unaffected.
        assert_eq!(region.read(0, 12).await.unwrap(), b"before death");
        region.write(100, b"still writable").await.unwrap();

        // Control path: alloc/map must fail, not hang.
        let err = c
            .alloc("post-mortem", 4096, AllocOptions::default())
            .await
            .err()
            .unwrap();
        assert!(matches!(err, RStoreError::Io(_)), "got {err:?}");
    });
}

#[test]
fn flapping_server_does_not_corrupt_capacity_accounting() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let master_handle = cluster.master.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        for round in 0..3 {
            fabric.set_node_up(victim, false);
            s.sleep(Duration::from_millis(150)).await;
            fabric.set_node_up(victim, true);
            s.sleep(Duration::from_secs(5)).await;
            assert_eq!(master_handle.live_servers(), 2, "round {round}");
            let name = format!("flap{round}");
            let r = c
                .alloc(&name, 64 * 1024, AllocOptions::default())
                .await
                .unwrap();
            r.write(0, b"ok").await.unwrap();
            c.free(&name).await.unwrap();
        }
        let stats = c.stats().await.unwrap();
        assert_eq!(stats.used, 0);
    });
}

#[test]
fn partitioned_client_times_out_cleanly() {
    let cluster = boot(2, 2);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c0 = RStoreClient::connect(&devs[0], master).await.unwrap();
        let region = c0
            .alloc("island", 64 * 1024, AllocOptions::default())
            .await
            .unwrap();
        // Cut the client itself off.
        fabric.set_node_up(devs[0].node(), false);
        let err = region.write(0, b"into the void").await.err().unwrap();
        assert!(matches!(err, RStoreError::Io(_)));
        // The rest of the cluster still works.
        let c1 = RStoreClient::connect(&devs[1], master).await.unwrap();
        let r1 = c1.map_degraded("island").await.unwrap();
        r1.write(0, b"other client").await.unwrap();
        assert_eq!(r1.read(0, 12).await.unwrap(), b"other client");
    });
}
