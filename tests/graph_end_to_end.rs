//! End-to-end graph processing: publish once, run the whole algorithm suite
//! on the same cluster, and cross-check everything against single-node
//! references and the message-passing baseline.

use std::rc::Rc;

use rgraph::{
    bfs, pagerank, reference, sssp, wcc, BfsConfig, GraphStore, JacobiConfig, PageRankConfig,
};
use rstore::{AllocOptions, Cluster, ClusterConfig, RStoreClient};
use workload::rmat_graph;

#[test]
fn full_suite_on_one_published_graph() {
    let cluster = Cluster::boot(ClusterConfig {
        clients: 6,
        ..ClusterConfig::with_servers(4)
    })
    .expect("boot");
    let g = rmat_graph(10, 8 * 1024, 77);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();

    let expect_pr = reference::pagerank(&g, 4, 0.85);
    let expect_bfs = reference::bfs(&g, 3);
    let expect_wcc = reference::wcc(&g);
    let expect_sssp = reference::sssp(&g, 3);

    let g2 = g.clone();
    sim.block_on(async move {
        let loader = RStoreClient::connect(&devs[0], master).await.unwrap();
        GraphStore::publish(
            &loader,
            "suite",
            &g2,
            AllocOptions {
                stripe_size: 256 * 1024,
                ..AllocOptions::default()
            },
        )
        .await
        .unwrap();

        let pr = pagerank::run(
            &devs,
            master,
            "suite",
            PageRankConfig {
                iters: 4,
                ..PageRankConfig::default()
            },
        )
        .await
        .unwrap();
        for (a, b) in pr.ranks.iter().zip(&expect_pr) {
            assert!((a - b).abs() < 1e-12);
        }

        let b = bfs::run(&devs, master, "suite", 3, BfsConfig::default())
            .await
            .unwrap();
        assert_eq!(b.levels, expect_bfs);

        let w = wcc::run(&devs, master, "suite", JacobiConfig::default())
            .await
            .unwrap();
        assert_eq!(w.values, expect_wcc);

        let s = sssp::run(
            &devs,
            master,
            "suite",
            3,
            JacobiConfig {
                job_nonce: 1,
                ..JacobiConfig::default()
            },
        )
        .await
        .unwrap();
        assert_eq!(s.values, expect_sssp);
    });
}

#[test]
fn rstore_framework_beats_message_passing_on_powerlaw() {
    // The E6 effect as a regression test: at least 2x on a power-law graph.
    let g = rmat_graph(11, 16 * 2048, 5);

    let cluster = Cluster::boot(ClusterConfig {
        clients: 8,
        ..ClusterConfig::with_servers(8)
    })
    .expect("boot");
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let g2 = g.clone();
    let rstore_total = sim.block_on(async move {
        let loader = RStoreClient::connect(&devs[0], master).await.unwrap();
        GraphStore::publish(&loader, "fast", &g2, AllocOptions::default())
            .await
            .unwrap();
        pagerank::run(
            &devs,
            master,
            "fast",
            PageRankConfig {
                iters: 3,
                ..PageRankConfig::default()
            },
        )
        .await
        .unwrap()
        .total
    });

    let sim = sim::Sim::new();
    let fabric = fabric::Fabric::new(sim.clone(), fabric::FabricConfig::default());
    let devs: Vec<rdma::RdmaDevice> = (0..8)
        .map(|_| rdma::RdmaDevice::new(&fabric, rdma::RdmaConfig::default()))
        .collect();
    let g = Rc::new(g);
    let msg_total = sim.block_on(async move {
        baseline::msg_graph::run(
            &devs,
            g,
            baseline::msg_graph::MsgPageRankConfig {
                iters: 3,
                ..Default::default()
            },
        )
        .await
        .unwrap()
        .total
    });

    let speedup = msg_total.as_secs_f64() / rstore_total.as_secs_f64();
    assert!(
        speedup > 2.0,
        "expected >2x on power-law graphs, got {speedup:.2}x"
    );
}

#[test]
fn graph_survives_reopen_from_new_client() {
    // Publish with one client; a completely fresh client on another machine
    // opens by name and reads consistent structure.
    let cluster = Cluster::boot(ClusterConfig {
        clients: 2,
        ..ClusterConfig::with_servers(3)
    })
    .expect("boot");
    let g = rmat_graph(8, 1024, 13);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let (n, m) = (g.n, g.m());
    sim.block_on(async move {
        let loader = RStoreClient::connect(&devs[0], master).await.unwrap();
        GraphStore::publish(&loader, "persisted", &g, AllocOptions::default())
            .await
            .unwrap();

        let other = RStoreClient::connect(&devs[1], master).await.unwrap();
        let store = GraphStore::open(&other, "persisted").await.unwrap();
        assert_eq!((store.n, store.m), (n, m));
        let xadj = store.read_u64s(&other, "out_xadj", 0, n + 1).await.unwrap();
        assert_eq!(xadj[0], 0);
        assert_eq!(*xadj.last().unwrap(), m);
        assert!(xadj.windows(2).all(|w| w[0] <= w[1]));
    });
}
