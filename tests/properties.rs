//! Property-based tests over the core data structures and invariants.
//!
//! Implemented as seeded randomized sweeps over [`sim::DetRng`] so the
//! workspace needs no external property-testing dependency: each property
//! runs a fixed number of cases from a fixed seed, so failures are exactly
//! reproducible (re-run the same test; the case index is in the panic
//! message).

use sim::DetRng;

use rdma::memory::Arena;
use rdma::{Access, DmaBuf};
use rsort::{choose_splitters, dest_of, partition_records, ShufflePlan};
use rstore::layout::Layout;
use rstore::proto::{CtrlReq, CtrlResp, Extent, RegionDesc, RegionState, StripeGroup};
use workload::{is_sorted, record_key, sort_records, teragen, KEY_BYTES, RECORD_BYTES};

/// Runs `body` for `cases` seeded cases, labelling failures with the case
/// index so any counterexample is reproducible.
fn cases(name: &str, cases: u64, mut body: impl FnMut(&mut DetRng)) {
    for case in 0..cases {
        let mut rng = DetRng::new(0xC0FFEE ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property {name:?} failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

// --- arena allocator -----------------------------------------------------------

/// Random alloc/free interleavings never double-allocate, never lose
/// capacity, and always coalesce back to a fully free arena.
#[test]
fn arena_allocator_invariants() {
    cases("arena_allocator_invariants", 64, |rng| {
        let capacity = 64 * 1024;
        let mut arena = Arena::new(capacity);
        let mut live: Vec<DmaBuf> = Vec::new();
        let steps = rng.range_u64(1, 120);
        for _ in 0..steps {
            let val = rng.range_u64(1, 2000);
            if rng.chance(0.5) {
                if let Ok(buf) = arena.alloc(val) {
                    // No overlap with any live allocation.
                    for other in &live {
                        let disjoint =
                            buf.addr + buf.len <= other.addr || other.addr + other.len <= buf.addr;
                        assert!(disjoint, "overlapping allocations");
                    }
                    live.push(buf);
                }
            } else if !live.is_empty() {
                let buf = live.swap_remove((val as usize) % live.len());
                assert!(arena.free(buf).is_ok());
            }
            let used: u64 = live.iter().map(|b| b.len).sum();
            assert_eq!(arena.used(), used);
        }
        for buf in live.drain(..) {
            arena.free(buf).unwrap();
        }
        // Fully coalesced: the whole capacity is allocatable again.
        assert!(arena.alloc(capacity).is_ok());
    });
}

/// Registered regions always bound remote access.
#[test]
fn mr_checks_bound_access() {
    cases("mr_checks_bound_access", 256, |rng| {
        let start = rng.range_u64(0, 1000);
        let len = rng.range_u64(1, 1000);
        let off = rng.range_u64(0, 2000);
        let alen = rng.range_u64(1, 2000);
        let mut arena = Arena::new(1 << 20);
        let _pad = arena.alloc(start.max(1)).unwrap();
        let buf = arena.alloc(len).unwrap();
        let mr = arena.register(buf, Access::REMOTE_READ).unwrap();
        let inside = off
            .checked_add(alen)
            .is_some_and(|e| off >= buf.addr && e <= buf.addr + buf.len);
        let ok = mr.check(off, alen, Access::REMOTE_READ).is_ok();
        assert_eq!(ok, inside);
    });
}

// --- stripe layout ---------------------------------------------------------------

fn random_desc(rng: &mut DetRng) -> RegionDesc {
    let n = rng.range_u64(1, 40) as usize;
    let lens: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 5000)).collect();
    RegionDesc {
        name: "p".into(),
        size: lens.iter().sum(),
        stripe_size: lens[0],
        groups: lens
            .iter()
            .map(|&len| StripeGroup {
                replicas: vec![Extent {
                    node: 0,
                    addr: 0,
                    rkey: 0,
                    len,
                }],
            })
            .collect(),
        state: RegionState::Healthy,
        checksums: false,
    }
}

/// Scatter/gather pieces tile the requested byte range exactly: a
/// bijection between buffer bytes and (stripe, offset) pairs.
#[test]
fn layout_pieces_tile_the_range() {
    cases("layout_pieces_tile_the_range", 128, |rng| {
        let desc = random_desc(rng);
        let layout = Layout::new(&desc);
        let size = layout.size();
        let offset = (rng.f64() * size as f64) as u64;
        let len = ((rng.f64() * (size - offset) as f64) as u64).min(size - offset);
        let pieces = layout.pieces(offset, len).unwrap();
        let mut cursor_buf = 0u64;
        let mut cursor_log = offset;
        for p in &pieces {
            assert_eq!(p.buf_offset, cursor_buf);
            // Logical position of the piece = stripe start + in-stripe offset.
            let stripe_start: u64 = desc.groups[..p.group].iter().map(|g| g.len()).sum();
            assert_eq!(stripe_start + p.offset_in_stripe, cursor_log);
            assert!(p.len > 0);
            assert!(p.offset_in_stripe + p.len <= desc.groups[p.group].len());
            cursor_buf += p.len;
            cursor_log += p.len;
        }
        assert_eq!(cursor_buf, len);
    });
}

/// Control-plane messages survive an encode/decode round trip.
#[test]
fn proto_round_trip_fuzzed() {
    cases("proto_round_trip_fuzzed", 128, |rng| {
        let name_len = rng.index(21);
        let name: String = (0..name_len)
            .map(|_| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyz/";
                alphabet[rng.index(alphabet.len())] as char
            })
            .collect();
        let size = rng.next_u64();
        let stripe = rng.range_u64(1, u64::MAX);
        let req = CtrlReq::Alloc {
            name: name.clone(),
            size,
            opts: rstore::AllocOptions {
                stripe_size: stripe,
                ..Default::default()
            },
        };
        assert_eq!(CtrlReq::decode(&req.encode()).unwrap(), req);
        let resp = CtrlResp::Err(name);
        assert_eq!(CtrlResp::decode(&resp.encode()).unwrap(), resp);
    });
}

/// Arbitrary byte garbage never panics the decoder.
#[test]
fn proto_decode_never_panics() {
    cases("proto_decode_never_panics", 256, |rng| {
        let len = rng.index(256);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let _ = CtrlReq::decode(&bytes);
        let _ = CtrlResp::decode(&bytes);
    });
}

// --- sort planning -----------------------------------------------------------------

/// Partitioning + shuffle-plan offsets reassemble into a dense,
/// ordered output for any record set and worker count.
#[test]
#[allow(clippy::needless_range_loop)]
fn shuffle_plan_reassembles_exactly() {
    cases("shuffle_plan_reassembles_exactly", 64, |rng| {
        let records = rng.range_u64(1, 400);
        let k = rng.index(8) + 1;
        let seed = rng.next_u64();
        let input = teragen(records, seed);
        // Sample all keys for splitters (worst-case accurate).
        let mut sample: Vec<[u8; KEY_BYTES]> = (0..records as usize)
            .map(|i| record_key(&input, i).try_into().unwrap())
            .collect();
        let splitters = choose_splitters(&mut sample, k);

        // Emulate the distributed flow: split input across k workers,
        // partition each, build the counts matrix.
        let mut per_worker: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut counts = vec![vec![0u64; k]; k];
        for w in 0..k {
            let lo = (w as u64 * records / k as u64) as usize * RECORD_BYTES;
            let hi = ((w as u64 + 1) * records / k as u64) as usize * RECORD_BYTES;
            let parts = partition_records(&input[lo..hi], &splitters);
            for (j, part) in parts.iter().enumerate() {
                counts[w][j] = (part.len() / RECORD_BYTES) as u64;
            }
            per_worker.push(parts);
        }
        let plan = ShufflePlan::new(counts);
        assert_eq!(plan.total(), records);

        // Shuffle into the output using the plan's offsets.
        let mut output = vec![0u8; input.len()];
        for (w, parts) in per_worker.iter().enumerate() {
            for (j, part) in parts.iter().enumerate() {
                let at = plan.write_index(w, j) as usize * RECORD_BYTES;
                output[at..at + part.len()].copy_from_slice(part);
            }
        }
        // Local-sort each partition; result must be globally sorted and a
        // permutation of the input.
        for j in 0..k {
            let (s, e) = plan.partition_range(j);
            sort_records(&mut output[s as usize * RECORD_BYTES..e as usize * RECORD_BYTES]);
        }
        assert!(is_sorted(&output));
        let mut expect = input.clone();
        sort_records(&mut expect);
        assert_eq!(output, expect);
    });
}

/// dest_of is the inverse of the splitter ordering.
#[test]
fn dest_of_monotone() {
    cases("dest_of_monotone", 64, |rng| {
        let n = rng.range_u64(2, 200) as usize;
        let k = rng.index(9) + 1;
        let keys: Vec<[u8; KEY_BYTES]> = (0..n)
            .map(|_| {
                let mut key = [0u8; KEY_BYTES];
                rng.fill_bytes(&mut key);
                key
            })
            .collect();
        let mut sample = keys.clone();
        let splitters = choose_splitters(&mut sample, k);
        let mut sorted = keys;
        sorted.sort_unstable();
        let dests: Vec<usize> = sorted.iter().map(|key| dest_of(key, &splitters)).collect();
        assert!(
            dests.windows(2).all(|w| w[0] <= w[1]),
            "routing must be monotone in key order"
        );
        assert!(dests.iter().all(|&d| d < k));
    });
}

// --- virtual-time executor -----------------------------------------------------------

/// Scheduled events always fire in (time, insertion) order regardless
/// of the order they were scheduled in.
#[test]
fn executor_fires_in_time_order() {
    cases("executor_fires_in_time_order", 32, |rng| {
        use std::cell::RefCell;
        use std::rc::Rc;
        let n = rng.range_u64(1, 100) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 10_000)).collect();
        let sim = sim::Sim::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        for (i, &d) in delays.iter().enumerate() {
            let log = log.clone();
            let s = sim.clone();
            sim.schedule(std::time::Duration::from_nanos(d), move || {
                log.borrow_mut().push((s.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 < w[1].1,
                    "same-instant events must keep insertion order"
                );
            }
        }
        for &(t, i) in log.iter() {
            assert_eq!(t, delays[i]);
        }
    });
}

/// Fabric byte accounting conserves: delivered bytes equal sent bytes
/// for any message pattern between live nodes.
#[test]
fn fabric_conserves_bytes() {
    cases("fabric_conserves_bytes", 32, |rng| {
        let sim = sim::Sim::new();
        let fabric: fabric::Fabric<u32> =
            fabric::Fabric::new(sim.clone(), fabric::FabricConfig::default());
        let nodes: Vec<_> = (0..4).map(|_| fabric.add_node()).collect();
        let mut rxs = Vec::new();
        for &n in &nodes {
            rxs.push(fabric.attach(n));
        }
        let mut expect_total = 0u64;
        let msgs = rng.range_u64(1, 60);
        for _ in 0..msgs {
            let src = rng.index(4);
            let dst = rng.index(4);
            let bytes = rng.range_u64(1, 100_000);
            fabric.send(nodes[src], nodes[dst], bytes, 0);
            expect_total += bytes;
        }
        for mut rx in rxs {
            sim.spawn(async move { while rx.recv().await.is_some() {} });
        }
        drop(fabric.clone()); // keep handle alive through run
        sim.run();
        let tx: u64 = nodes.iter().map(|&n| fabric.tx_bytes(n)).sum();
        let rx: u64 = nodes.iter().map(|&n| fabric.rx_bytes(n)).sum();
        assert_eq!(tx, expect_total);
        assert_eq!(tx, rx);
    });
}

// --- small-IO batching / pipelining equivalence -----------------------------------

/// Applies one seeded small-IO schedule against a fresh cluster and returns
/// every op's bytes (plus, fault-free, the post-write region image), or the
/// first error formatted. `batched` posts reads through
/// `Region::read_into_many`; otherwise one awaited `read_into` per op.
/// `depth` is the client's checksummed-stripe pipeline window. With `lossy`,
/// a total-loss fault window covers the read phase and writes are skipped.
#[allow(clippy::too_many_arguments)]
fn run_small_io(
    checksums: bool,
    stripe: u64,
    size: u64,
    schedule: &[(u64, u64)],
    writes: &[(u64, Vec<u8>)],
    fill_seed: u64,
    batched: bool,
    depth: usize,
    lossy: bool,
) -> Result<Vec<Vec<u8>>, String> {
    use rstore::{AllocOptions, ClientConfig, Cluster, ClusterConfig, RStoreClient};
    let cluster = Cluster::boot(ClusterConfig {
        clients: 1,
        ..ClusterConfig::with_servers(3)
    })
    .expect("boot");
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let schedule = schedule.to_vec();
    let writes = writes.to_vec();
    sim.block_on(async move {
        let client = RStoreClient::connect_with(
            &devs[0],
            master,
            ClientConfig {
                pipeline_depth: depth,
                ..ClientConfig::default()
            },
        )
        .await
        .expect("connect");
        let opts = AllocOptions {
            stripe_size: stripe,
            checksums,
            ..AllocOptions::default()
        };
        let region = client
            .alloc("prop_smallio", size, opts)
            .await
            .expect("alloc");
        let mut fill = vec![0u8; size as usize];
        DetRng::new(fill_seed).fill_bytes(&mut fill);
        region.write(0, &fill).await.expect("prefill");
        if lossy {
            fabric::FaultPlan::new(1)
                .loss_window(
                    std::time::Duration::ZERO,
                    std::time::Duration::from_secs(600),
                    1.0,
                )
                .install(&fabric);
        }
        let dev = client.device().clone();
        let result: Result<Vec<Vec<u8>>, rstore::RStoreError> = async {
            let mut out = Vec::new();
            if batched {
                let bufs: Vec<DmaBuf> = schedule
                    .iter()
                    .map(|&(_, len)| dev.alloc(len).expect("buf"))
                    .collect();
                let ios: Vec<(u64, DmaBuf)> = schedule
                    .iter()
                    .zip(&bufs)
                    .map(|(&(off, _), &buf)| (off, buf))
                    .collect();
                region.read_into_many(&ios).await?;
                for (&(_, len), buf) in schedule.iter().zip(&bufs) {
                    out.push(dev.read_mem(buf.addr, len).expect("mem"));
                }
            } else {
                for &(off, len) in &schedule {
                    let buf = dev.alloc(len).expect("buf");
                    region.read_into(off, buf).await?;
                    out.push(dev.read_mem(buf.addr, len).expect("mem"));
                    dev.free(buf).expect("free");
                }
            }
            if !lossy {
                for (off, data) in &writes {
                    region.write(*off, data).await?;
                }
                out.push(region.read(0, size).await?);
            }
            Ok(out)
        }
        .await;
        result.map_err(|e| format!("{e:?}"))
    })
}

/// Doorbell batching and stripe pipelining are pure performance changes:
/// for seeded random offset/len schedules, batch size 1 vs N and pipeline
/// depth 1 vs N return byte-identical data (reads, and the region image
/// after random writes) on both plain and checksummed regions — and under
/// a total-loss fault window both configurations report the same error.
#[test]
fn batched_and_pipelined_small_io_equivalent() {
    cases("batched_and_pipelined_small_io_equivalent", 4, |rng| {
        for checksums in [false, true] {
            let stripe = 1u64 << (10 + rng.index(3));
            let size = stripe * rng.range_u64(4, 13);
            let n_ops = rng.range_u64(2, 9);
            let schedule: Vec<(u64, u64)> = (0..n_ops)
                .map(|_| {
                    let len = rng.range_u64(1, 4096.min(size) + 1);
                    let off = rng.range_u64(0, size - len + 1);
                    (off, len)
                })
                .collect();
            let writes: Vec<(u64, Vec<u8>)> = (0..rng.range_u64(1, 4))
                .map(|_| {
                    let len = rng.range_u64(1, 3000.min(size) + 1);
                    let off = rng.range_u64(0, size - len + 1);
                    let mut data = vec![0u8; len as usize];
                    rng.fill_bytes(&mut data);
                    (off, data)
                })
                .collect();
            let fill_seed = rng.next_u64();

            let serial = run_small_io(
                checksums, stripe, size, &schedule, &writes, fill_seed, false, 1, false,
            );
            let batched = run_small_io(
                checksums, stripe, size, &schedule, &writes, fill_seed, true, 16, false,
            );
            assert!(serial.is_ok(), "fault-free run failed: {serial:?}");
            assert_eq!(
                serial, batched,
                "fault-free outcomes diverged (checksums={checksums})"
            );

            let serial = run_small_io(
                checksums, stripe, size, &schedule, &writes, fill_seed, false, 1, true,
            );
            let batched = run_small_io(
                checksums, stripe, size, &schedule, &writes, fill_seed, true, 16, true,
            );
            assert!(serial.is_err(), "total loss must surface an IO error");
            assert_eq!(
                serial, batched,
                "lossy outcomes diverged (checksums={checksums})"
            );
        }
    });
}

// --- KV table vs model ------------------------------------------------------------

/// A random op sequence against the distributed KV table agrees with a
/// `HashMap` executed in lockstep.
#[test]
fn kv_table_matches_hashmap_model() {
    cases("kv_table_matches_hashmap_model", 12, |rng| {
        use rstore::{Cluster, ClusterConfig, KvConfig, KvTable};
        use std::collections::HashMap;

        let n_ops = rng.range_u64(1, 60);
        let ops: Vec<(u8, u8, Vec<u8>)> = (0..n_ops)
            .map(|_| {
                let len = rng.index(40);
                let mut value = vec![0u8; len];
                rng.fill_bytes(&mut value);
                (rng.index(3) as u8, rng.index(24) as u8, value)
            })
            .collect();

        let cluster = Cluster::boot(ClusterConfig {
            clients: 1,
            ..ClusterConfig::with_servers(2)
        })
        .expect("boot");
        let sim = cluster.sim.clone();
        let devs = cluster.client_devs.clone();
        let master = cluster.master_node();
        let outcome: Result<(), String> = sim.block_on(async move {
            let client = rstore::RStoreClient::connect(&devs[0], master)
                .await
                .map_err(|e| e.to_string())?;
            let kv = KvTable::create(
                &client,
                "prop_kv",
                KvConfig {
                    buckets: 64,
                    slot_bytes: 128,
                    max_probe: 64,
                    ..KvConfig::default()
                },
            )
            .await
            .map_err(|e| e.to_string())?;
            let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            for (op, keyid, value) in ops {
                let key = format!("key-{keyid}").into_bytes();
                match op {
                    0 => {
                        kv.put(&key, &value).await.map_err(|e| e.to_string())?;
                        model.insert(key, value);
                    }
                    1 => {
                        let deleted = kv.delete(&key).await.map_err(|e| e.to_string())?;
                        let expected = model.remove(&key).is_some();
                        if deleted != expected {
                            return Err(format!("delete mismatch for {key:?}"));
                        }
                    }
                    _ => {
                        let got = kv.get(&key).await.map_err(|e| e.to_string())?;
                        if got.as_ref() != model.get(&key) {
                            return Err(format!("get mismatch for {key:?}"));
                        }
                    }
                }
            }
            // Final full check.
            for (key, value) in &model {
                let got = kv.get(key).await.map_err(|e| e.to_string())?;
                if got.as_deref() != Some(value.as_slice()) {
                    return Err(format!("final state mismatch for {key:?}"));
                }
            }
            Ok(())
        });
        assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}
