//! Recovery matrix: data-path reconnect, read failover under injected
//! loss, master repair, and the control-path accounting fixes — all driven
//! through [`FaultPlan`] or direct fabric faults in virtual time.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use fabric::FaultPlan;
use rstore::{
    AllocOptions, Cluster, ClusterConfig, MasterConfig, RStoreClient, RStoreError, RegionState,
    ServerConfig,
};

fn boot(servers: usize, clients: usize) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients,
        // Short leases and an eager repair task so recovery converges
        // quickly (virtual time); short RC timeouts so IO errors surface
        // fast instead of after the default 2 s budget.
        master: MasterConfig {
            lease: Duration::from_millis(50),
            sweep_interval: Duration::from_millis(20),
            repair_interval: Duration::from_millis(40),
            ..MasterConfig::default()
        },
        server: ServerConfig {
            heartbeat: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        rdma: rdma::RdmaConfig {
            base_timeout: Duration::from_millis(25),
            ..rdma::RdmaConfig::default()
        },
        ..ClusterConfig::with_servers(servers)
    })
    .expect("boot")
}

fn replicated() -> AllocOptions {
    AllocOptions {
        stripe_size: 64 * 1024,
        replicas: 2,
        ..AllocOptions::default()
    }
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u64 * 31 % 239) as u8).collect()
}

#[test]
fn write_during_server_death_errors_then_recovers_after_repair() {
    let cluster = boot(4, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let victim = cluster.servers[1].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(512 * 1024);
        let region = c.alloc("wounded", 512 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();

        fabric.set_node_up(victim, false);
        // A write spanning the dead server must surface an error, not hang.
        let err = region.write(0, &data).await.err().unwrap();
        assert!(matches!(err, RStoreError::Io(_)), "got {err:?}");

        // Wait until repair has rebuilt every group on live servers.
        let mut repaired = false;
        for _ in 0..100 {
            s.sleep(Duration::from_millis(20)).await;
            if let Ok(d) = c.lookup("wounded").await {
                if d.state == RegionState::Healthy
                    && d.groups
                        .iter()
                        .flat_map(|g| &g.replicas)
                        .all(|x| x.node != victim.0)
                {
                    repaired = true;
                    break;
                }
            }
        }
        assert!(repaired, "repair must restore a Healthy descriptor");

        // A fresh mapping writes and reads cleanly, with the data intact.
        let fresh = c.map_degraded("wounded").await.unwrap();
        assert_eq!(fresh.read(0, 512 * 1024).await.unwrap(), data);
        fresh.write(0, &data).await.unwrap();
        assert_eq!(fresh.read(0, 512 * 1024).await.unwrap(), data);
    });
}

#[test]
fn reads_survive_a_fault_plan_loss_window() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(256 * 1024);
        let region = c.alloc("lossy", 256 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();

        // From here, drop 20% of fabric messages for 100 ms.
        FaultPlan::new(11)
            .loss_window(Duration::from_millis(1), Duration::from_millis(100), 0.2)
            .install(&fabric);

        // Reads across the window must all eventually succeed with the
        // right bytes: dropped packets surface as timeouts, and the client
        // redials / fails over to the other replica.
        for i in 0..40u64 {
            let off = (i % 32) * 4096;
            let mut ok = false;
            for _ in 0..10 {
                match region.read(off, 4096).await {
                    Ok(bytes) => {
                        assert_eq!(bytes, data[off as usize..off as usize + 4096]);
                        ok = true;
                        break;
                    }
                    Err(_) => s.sleep(Duration::from_millis(2)).await,
                }
            }
            assert!(ok, "read {i} never succeeded");
            s.sleep(Duration::from_millis(2)).await;
        }
        assert!(
            fabric.metrics().counter("fabric.dropped.injected") > 0,
            "the loss window must actually drop traffic"
        );
    });
}

#[test]
fn repair_restores_healthy_descriptor_data_and_accounting() {
    let cluster = boot(4, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let victim = cluster.servers[2].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(512 * 1024);
        let region = c.alloc("phoenix", 512 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();
        let used_before = c.stats().await.unwrap().used;
        assert_eq!(used_before, 2 * 512 * 1024, "two replicas of every byte");

        FaultPlan::new(3)
            .crash_at(Duration::from_millis(10), victim)
            .install(&fabric);

        // The region must pass through Degraded and come back Healthy.
        let mut saw_degraded = false;
        let mut healthy_again = false;
        for _ in 0..200 {
            s.sleep(Duration::from_millis(10)).await;
            let Ok(d) = c.lookup("phoenix").await else {
                continue;
            };
            match d.state {
                RegionState::Degraded => saw_degraded = true,
                RegionState::Healthy if saw_degraded => {
                    healthy_again = true;
                    break;
                }
                RegionState::Healthy => {}
            }
        }
        assert!(saw_degraded, "lease expiry must degrade the region");
        assert!(healthy_again, "repair must restore Healthy");

        // New descriptor avoids the dead server and the data is intact.
        let fresh = c.map_degraded("phoenix").await.unwrap();
        for g in &fresh.desc().groups {
            for x in &g.replicas {
                assert_ne!(x.node, victim.0, "repaired replica on the dead server");
            }
        }
        assert_eq!(fresh.read(0, 512 * 1024).await.unwrap(), data);

        // Repair moved bytes, it did not leak them: total accounting is
        // unchanged, and a free returns the cluster to zero.
        assert_eq!(c.stats().await.unwrap().used, used_before);
        c.free("phoenix").await.unwrap();
        assert_eq!(c.stats().await.unwrap().used, 0);
    });
}

/// One seeded fault scenario, traced end to end.
fn traced_fault_run() -> String {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let tracer = sim.tracer();
    tracer.enable(1 << 16);
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(128 * 1024);
        let region = c.alloc("seeded", 128 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();
        FaultPlan::new(42)
            .crash_at(Duration::from_millis(5), victim)
            .loss_window(Duration::from_millis(8), Duration::from_millis(40), 0.1)
            .install(&fabric);
        for i in 0..20u64 {
            // Errors are expected mid-fault; the trace records them too.
            let _ = region.read((i % 16) * 4096, 4096).await;
            s.sleep(Duration::from_millis(3)).await;
        }
        s.sleep(Duration::from_millis(400)).await;
        let _ = c.lookup("seeded").await;
    });
    tracer.export_chrome_trace()
}

#[test]
fn same_fault_seed_traces_identically() {
    let a = traced_fault_run();
    let b = traced_fault_run();
    assert_eq!(a, b, "same fault seed must reproduce the same trace");
}

#[test]
fn server_reregisters_after_master_loses_state() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let master_handle = cluster.master.clone();
    let victim = cluster.servers[0].node();
    let s = sim.clone();
    sim.block_on(async move {
        assert_eq!(master_handle.live_servers(), 2);
        // Master "restarts": its server registry is gone. The next
        // heartbeat is answered with an error, which must push the server
        // back into registration instead of looping on dead heartbeats.
        master_handle.forget_server(victim);
        assert_eq!(master_handle.live_servers(), 1);
        s.sleep(Duration::from_millis(100)).await;
        assert_eq!(
            master_handle.live_servers(),
            2,
            "an Err heartbeat reply must trigger re-registration"
        );
    });
}

#[test]
fn used_accounting_survives_reregistration() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let master_handle = cluster.master.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        c.alloc("sticky", 128 * 1024, AllocOptions::default())
            .await
            .unwrap();
        assert_eq!(c.stats().await.unwrap().used, 128 * 1024);

        // Flap the server: on revival its control connection is broken, so
        // it re-registers — which must not reset its `used` accounting
        // while the region still references its extents.
        fabric.set_node_up(victim, false);
        s.sleep(Duration::from_millis(150)).await;
        fabric.set_node_up(victim, true);
        s.sleep(Duration::from_secs(5)).await;
        assert_eq!(master_handle.live_servers(), 2);
        assert_eq!(
            c.stats().await.unwrap().used,
            128 * 1024,
            "re-registration must preserve used capacity"
        );
        c.free("sticky").await.unwrap();
        assert_eq!(c.stats().await.unwrap().used, 0);
    });
}

#[test]
fn failed_grow_releases_name_reservation() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        c.alloc("g", 64 * 1024, AllocOptions::default())
            .await
            .unwrap();
        // Impossible grow: more replicas than live servers. The error must
        // come back structured (remapped from the wire), and the failed
        // grow must drop its name reservation.
        let err = c
            .grow(
                "g",
                64 * 1024,
                AllocOptions {
                    replicas: 5,
                    ..AllocOptions::default()
                },
            )
            .await
            .err()
            .unwrap();
        assert_eq!(
            err,
            RStoreError::NotEnoughServers {
                replicas: 5,
                available: 2
            }
        );
        // A feasible grow right after must succeed — the name is free.
        c.grow("g", 64 * 1024, AllocOptions::default())
            .await
            .unwrap();
    });
}

#[test]
fn grow_racing_with_free_rolls_back_cleanly() {
    let cluster = boot(2, 2);
    let sim = cluster.sim.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c0 = RStoreClient::connect(&devs[0], master).await.unwrap();
        let c1 = RStoreClient::connect(&devs[1], master).await.unwrap();
        c0.alloc("ephemeral", 64 * 1024, AllocOptions::default())
            .await
            .unwrap();

        // Start a large grow, then free the region while the master is
        // still collecting extents from the servers.
        let grow_result: Rc<RefCell<Option<rstore::Result<()>>>> = Rc::new(RefCell::new(None));
        {
            let c0 = c0.clone();
            let grow_result = grow_result.clone();
            s.spawn(async move {
                let r = c0
                    .grow("ephemeral", 64 * 1024 * 1024, AllocOptions::default())
                    .await
                    .map(|_| ());
                *grow_result.borrow_mut() = Some(r);
            });
        }
        s.sleep(Duration::from_micros(50)).await;
        c1.free("ephemeral").await.unwrap();

        while grow_result.borrow().is_none() {
            s.sleep(Duration::from_millis(1)).await;
        }
        let r = grow_result.borrow_mut().take().unwrap();
        assert!(
            matches!(r, Err(RStoreError::NotFound(_))),
            "grow over a freed region must report NotFound, got {r:?}"
        );
        // The aborted grow must leak neither capacity nor the name.
        assert_eq!(c0.stats().await.unwrap().used, 0);
        c1.alloc("ephemeral", 4096, AllocOptions::default())
            .await
            .unwrap();
    });
}

// --- live migration / drain matrix ------------------------------------------

fn single_replica() -> AllocOptions {
    AllocOptions {
        stripe_size: 64 * 1024,
        replicas: 1,
        ..AllocOptions::default()
    }
}

#[test]
fn stale_descriptor_after_drain_revalidates_and_retries() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(256 * 1024);
        let reader = c
            .alloc("moving", 256 * 1024, single_replica())
            .await
            .unwrap();
        reader.write(0, &data).await.unwrap();
        // An independently mapped handle: its cached descriptor does not
        // share the reader's, so it exercises write-path revalidation on
        // its own.
        let writer = c.map("moving").await.unwrap();

        let victim = fabric::NodeId(reader.desc().groups[0].replicas[0].node);
        let (extents, bytes) = c.drain(victim).await.unwrap();
        assert!(extents >= 1, "the victim hosted stripe 0");
        assert!(bytes >= 64 * 1024);

        // Reading through the stale handle must revalidate and succeed —
        // before the revalidation path existed this surfaced an IO error.
        assert_eq!(reader.read(0, 256 * 1024).await.unwrap(), data);
        assert!(
            fabric.metrics().counter("rstore.desc.refresh") >= 1,
            "the stale read must have refreshed its descriptor"
        );

        // Writing through the other stale handle must also revalidate.
        let data2 = payload(64 * 1024);
        writer.write(0, &data2).await.unwrap();
        let fresh = c.map("moving").await.unwrap();
        assert_eq!(fresh.read(0, 64 * 1024).await.unwrap(), data2);
        assert_eq!(
            fresh.read(64 * 1024, 192 * 1024).await.unwrap(),
            data[64 * 1024..],
            "bytes outside the overwrite survive the move"
        );
    });
}

#[test]
fn stale_checksummed_read_is_not_misdiagnosed_as_corruption() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(128 * 1024);
        let region = c
            .alloc(
                "movck",
                128 * 1024,
                AllocOptions {
                    checksums: true,
                    ..single_replica()
                },
            )
            .await
            .unwrap();
        region.write(0, &data).await.unwrap();

        let victim = fabric::NodeId(region.desc().groups[0].replicas[0].node);
        c.drain(victim).await.unwrap();

        // The verified read path must surface the stale descriptor as a
        // revalidate-and-retry, not as CorruptionDetected (and must not
        // file a corruption report against healthy data).
        assert_eq!(region.read(0, 128 * 1024).await.unwrap(), data);
        assert_eq!(
            fabric.metrics().counter("integrity.read_mismatch"),
            0,
            "a migrated-away extent is not corruption"
        );
        assert!(fabric.metrics().counter("rstore.desc.refresh") >= 1);
    });
}

#[test]
fn drain_empties_server_preserving_data_and_accounting() {
    let cluster = boot(4, 1);
    let sim = cluster.sim.clone();
    let victim = cluster.servers[1].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(512 * 1024);
        let region = c.alloc("evac", 512 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();
        let used_before = c.stats().await.unwrap().used;

        let (extents, bytes) = c.drain(victim).await.unwrap();
        assert!(
            extents > 0 && bytes > 0,
            "round-robin put data on every node"
        );

        // Every descriptor now avoids the drained node and the data moved
        // intact; the books balance exactly (nothing leaked, nothing lost).
        let fresh = c.map("evac").await.unwrap();
        for g in &fresh.desc().groups {
            for x in &g.replicas {
                assert_ne!(x.node, victim.0, "extent left on the drained server");
            }
        }
        assert_eq!(fresh.read(0, 512 * 1024).await.unwrap(), data);
        let st = c.stats().await.unwrap();
        assert_eq!(st.used, used_before);
        assert!(st.consistent, "drain must keep the accounting invariant");

        // The drained node stays excluded: a second drain is rejected and
        // new allocations avoid it.
        assert!(c.drain(victim).await.is_err(), "duplicate drain must error");
        let after = c.alloc("after", 256 * 1024, replicated()).await.unwrap();
        for g in &after.desc().groups {
            for x in &g.replicas {
                assert_ne!(x.node, victim.0, "drained server must get no placements");
            }
        }
    });
}

#[test]
fn drain_without_spare_capacity_fails_structured_not_hanging() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        // Two replicas on two servers: every group already spans both, so
        // there is no third node to absorb the drained extents.
        let data = payload(128 * 1024);
        let region = c.alloc("stuck", 128 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();

        let err = c.drain(victim).await.err().unwrap();
        assert!(
            matches!(err, RStoreError::InsufficientCapacity { .. }),
            "drain without headroom must degrade to a structured error, got {err:?}"
        );

        // The failed drain put the node back into normal service: new
        // allocations still succeed, the data is whole, the books balance.
        c.alloc("still-works", 64 * 1024, replicated())
            .await
            .unwrap();
        assert_eq!(region.read(0, 128 * 1024).await.unwrap(), data);
        assert!(c.stats().await.unwrap().consistent);
    });
}

#[test]
fn drain_racing_crash_converges_to_healthy_books_balanced() {
    let cluster = boot(5, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let drained = cluster.servers[0].node();
    let crashed = cluster.servers[3].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(512 * 1024);
        let region = c.alloc("storm", 512 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();
        let used_before = c.stats().await.unwrap().used;

        // Crash one server shortly after the drain of another begins, so
        // migration, lease expiry, and repair all overlap.
        FaultPlan::new(21)
            .crash_at(Duration::from_millis(15), crashed)
            .install(&fabric);
        // The drain may fail while placement churns (targets die under
        // it); the operator's answer is to retry — each attempt must
        // return, structured, never hang.
        let mut drained_ok = false;
        for _ in 0..20 {
            match c.drain(drained).await {
                Ok(_) => {
                    drained_ok = true;
                    break;
                }
                Err(_) => s.sleep(Duration::from_millis(50)).await,
            }
        }
        assert!(drained_ok, "drain must eventually complete");

        // Repair clears the crashed server too; wait for a fully healthy
        // descriptor that avoids both nodes.
        let mut settled = false;
        for _ in 0..200 {
            s.sleep(Duration::from_millis(10)).await;
            if let Ok(d) = c.lookup("storm").await {
                if d.state == RegionState::Healthy
                    && d.groups
                        .iter()
                        .flat_map(|g| &g.replicas)
                        .all(|x| x.node != drained.0 && x.node != crashed.0)
                {
                    settled = true;
                    break;
                }
            }
        }
        assert!(settled, "drain + crash repair must converge to Healthy");
        assert_eq!(region.read(0, 512 * 1024).await.unwrap(), data);
        let st = c.stats().await.unwrap();
        assert_eq!(st.used, used_before, "no bytes leaked by the race");
        assert!(st.consistent);
    });
}

#[test]
fn reregistration_recomputes_used_from_descriptors() {
    let cluster = boot(2, 1);
    let sim = cluster.sim.clone();
    let master_handle = cluster.master.clone();
    let victim = cluster.servers[0].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        c.alloc("ledger", 128 * 1024, replicated()).await.unwrap();
        let before = c.stats().await.unwrap();
        assert_eq!(before.used, 2 * 128 * 1024);
        assert!(before.consistent);

        // Master loses the server's row while its extents are still
        // referenced by a descriptor. The next heartbeat re-registers it;
        // the fresh row must re-derive `used` from the descriptors instead
        // of restarting at zero (which double-frees capacity and breaks
        // the invariant).
        master_handle.forget_server(victim);
        s.sleep(Duration::from_millis(100)).await;
        let after = c.stats().await.unwrap();
        assert_eq!(
            after.used,
            2 * 128 * 1024,
            "re-registration must rebuild used from descriptors"
        );
        assert!(after.consistent, "accounting invariant must hold");
        c.free("ledger").await.unwrap();
        let zero = c.stats().await.unwrap();
        assert_eq!(zero.used, 0);
        assert!(zero.consistent);
    });
}

#[test]
fn rebalancer_spreads_load_onto_joined_server() {
    let cluster = Cluster::boot(ClusterConfig {
        clients: 1,
        master: MasterConfig {
            lease: Duration::from_millis(50),
            sweep_interval: Duration::from_millis(20),
            repair_interval: Duration::from_millis(40),
            rebalance: true,
            rebalance_interval: Duration::from_millis(20),
            rebalance_spread: 0.10,
            ..MasterConfig::default()
        },
        server: ServerConfig {
            donate: 16 * 1024 * 1024,
            heartbeat: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        ..ClusterConfig::with_servers(2)
    })
    .expect("boot");
    let sim = cluster.sim.clone();
    let master_handle = cluster.master.clone();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let dark = cluster.add_dark_server();
    let joined = dark.node();
    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let mut payloads = Vec::new();
        for i in 0..4 {
            let data = payload(1024 * 1024);
            let r = c
                .alloc(&format!("ball{i}"), 1024 * 1024, single_replica())
                .await
                .unwrap();
            r.write(0, &data).await.unwrap();
            payloads.push((r, data));
        }

        // A fresh empty server joins: utilization spread jumps well past
        // the hysteresis band, so the rebalancer must level it out.
        let _joined_server = cluster.start_server(&dark).unwrap();
        s.sleep(Duration::from_secs(2)).await;

        let report = master_handle.local_report();
        let row = report
            .servers
            .iter()
            .find(|r| r.node == joined.0)
            .expect("joined server registered");
        assert!(
            row.used > 0,
            "rebalancer must migrate extents onto the empty server"
        );
        let st = c.stats().await.unwrap();
        assert!(st.consistent, "rebalancing must keep the books balanced");
        assert!(
            cluster.fabric.metrics().counter("rebalance.extents") > 0,
            "moves must be attributed to the rebalancer"
        );

        // Every region still reads back through its (possibly stale)
        // original handle — revalidation under planned movement.
        for (r, data) in &payloads {
            assert_eq!(&r.read(0, 1024 * 1024).await.unwrap(), data);
        }
    });
}

/// A seeded run mixing planned membership (join + drain via the fault
/// plan's membership hook) with a crash and a loss window, traced end to
/// end — the chaos-composition determinism check.
fn traced_membership_run() -> String {
    let cluster = boot(4, 1);
    let sim = cluster.sim.clone();
    let fabric = cluster.fabric.clone();
    let victim = cluster.servers[2].node();
    let crash = cluster.servers[3].node();
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let master_handle = cluster.master.clone();
    let dark = cluster.add_dark_server();
    let dark_node = dark.node();
    let tracer = sim.tracer();
    tracer.enable(1 << 16);

    // Wire membership events to the cluster: Join starts the dark server,
    // Drain asks the master to migrate the node empty (fire-and-forget,
    // like an operator would).
    let cluster = std::rc::Rc::new(cluster);
    {
        let cluster = cluster.clone();
        let sim2 = sim.clone();
        fabric.set_membership_hook(Rc::new(move |ev| match ev {
            fabric::MembershipEvent::Join(n) if n == dark_node => {
                let _ = cluster.start_server(&dark);
            }
            fabric::MembershipEvent::Drain(n) => {
                let m = master_handle.clone();
                sim2.spawn(async move {
                    let _ = m.drain(n).await;
                });
            }
            _ => {}
        }));
    }
    FaultPlan::new(77)
        .join_at(Duration::from_millis(5), dark_node)
        .drain_at(Duration::from_millis(30), victim)
        .crash_at(Duration::from_millis(45), crash)
        .loss_window(Duration::from_millis(40), Duration::from_millis(90), 0.1)
        .install(&fabric);

    let s = sim.clone();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let data = payload(256 * 1024);
        let region = c.alloc("churn", 256 * 1024, replicated()).await.unwrap();
        region.write(0, &data).await.unwrap();
        for i in 0..30u64 {
            let off = (i % 32) * 4096;
            // Errors mid-chaos are acceptable; the trace records them.
            let _ = region.read(off, 4096).await;
            s.sleep(Duration::from_millis(5)).await;
        }
        s.sleep(Duration::from_millis(500)).await;
        // The workload itself must have stayed correct wherever it
        // succeeded: a final verified read.
        assert_eq!(region.read(0, 256 * 1024).await.unwrap(), data);
        let st = c.stats().await.unwrap();
        assert!(st.consistent, "chaos must not unbalance the books");
    });
    tracer.export_chrome_trace()
}

#[test]
fn same_membership_plan_traces_identically() {
    let a = traced_membership_run();
    let b = traced_membership_run();
    assert_eq!(a, b, "join/drain/crash/loss under one seed must reproduce");
}
