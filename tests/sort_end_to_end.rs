//! End-to-end sorting: correctness under varied worker counts, data
//! skews, and repeat runs.

use rsort::{distributed, SortConfig, SortCostModel, SortMode};
use rstore::{AllocOptions, Cluster, ClusterConfig, RStoreClient};
use workload::{is_sorted, record_key, teragen, RECORD_BYTES};

fn boot(workers: usize) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients: workers,
        ..ClusterConfig::with_servers(3)
    })
    .expect("boot")
}

fn cfg(job: &str) -> SortConfig {
    SortConfig {
        job: job.into(),
        io_chunk: 256 * 1024,
        opts: AllocOptions {
            stripe_size: 512 * 1024,
            ..AllocOptions::default()
        },
        ..SortConfig::default()
    }
}

async fn sort_and_fetch(
    cluster: &Cluster,
    job: &str,
    input: &[u8],
) -> (Vec<u8>, rsort::SortOutcome) {
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    let loader = RStoreClient::connect(&devs[0], master).await.expect("c");
    let cfg = cfg(job);
    distributed::load_input(&loader, &cfg, input)
        .await
        .expect("load");
    let outcome = distributed::run(&devs, master, cfg).await.expect("sort");
    let out = loader.map(&format!("{job}/output")).await.expect("map");
    let bytes = out.read(0, out.size()).await.expect("read");
    (bytes, outcome)
}

#[test]
fn sorted_output_is_the_sorted_input() {
    let cluster = boot(5);
    let sim = cluster.sim.clone();
    let input = teragen(3_000, 77);
    let (output, outcome) = sim.block_on({
        let input = input.clone();
        async move { sort_and_fetch(&cluster, "s1", &input).await }
    });
    assert_eq!(outcome.records, 3_000);
    assert!(is_sorted(&output));
    // Exact multiset check: sort the input locally and compare bytes.
    let mut expect = input;
    workload::sort_records(&mut expect);
    assert_eq!(output, expect);
}

#[test]
fn skewed_keys_still_balance_and_sort() {
    // All keys share a common prefix: splitters must still divide the
    // space and the output must be correct.
    let cluster = boot(4);
    let sim = cluster.sim.clone();
    let mut input = teragen(2_000, 5);
    for i in 0..2_000 {
        input[i * RECORD_BYTES] = 0xAB; // collapse the leading byte
    }
    let (output, _) = sim.block_on({
        let input = input.clone();
        async move { sort_and_fetch(&cluster, "skew", &input).await }
    });
    assert!(is_sorted(&output));
    let mut expect = input;
    workload::sort_records(&mut expect);
    assert_eq!(output, expect);
}

#[test]
fn duplicate_keys_are_preserved() {
    let cluster = boot(3);
    let sim = cluster.sim.clone();
    let mut input = teragen(1_000, 9);
    // Make 100 records share one key.
    let key: Vec<u8> = record_key(&input, 0).to_vec();
    for i in 0..100 {
        input[i * RECORD_BYTES..i * RECORD_BYTES + key.len()].copy_from_slice(&key);
    }
    let (output, _) = sim.block_on({
        let input = input.clone();
        async move { sort_and_fetch(&cluster, "dup", &input).await }
    });
    assert!(is_sorted(&output));
    assert_eq!(output.len(), input.len());
    let dups = (0..1000)
        .filter(|&i| record_key(&output, i) == &key[..])
        .count();
    assert_eq!(dups, 100);
}

#[test]
fn two_jobs_back_to_back_are_independent() {
    let cluster = boot(4);
    let sim = cluster.sim.clone();
    sim.block_on(async move {
        let a = teragen(800, 1);
        let b = teragen(800, 2);
        let (out_a, _) = sort_and_fetch(&cluster, "job_a", &a).await;
        let (out_b, _) = sort_and_fetch(&cluster, "job_b", &b).await;
        assert!(is_sorted(&out_a));
        assert!(is_sorted(&out_b));
        assert_ne!(out_a, out_b);
    });
}

#[test]
fn fluid_mode_matches_paper_scaling_shape() {
    // Doubling the data roughly doubles the (virtual) time.
    let run = |gib: u64, job: &str| {
        let cluster = Cluster::boot(ClusterConfig {
            clients: 4,
            fabric: fabric::FabricConfig::fluid(),
            ..ClusterConfig::with_servers(4)
        })
        .expect("boot");
        let sim = cluster.sim.clone();
        let devs = cluster.client_devs.clone();
        let master = cluster.master_node();
        let job = job.to_owned();
        sim.block_on(async move {
            let loader = RStoreClient::connect(&devs[0], master).await.expect("c");
            let cfg = SortConfig {
                mode: SortMode::Fluid,
                job,
                io_chunk: 16 << 20,
                cost: SortCostModel::default(),
                opts: AllocOptions {
                    stripe_size: 16 << 20,
                    ..AllocOptions::default()
                },
                ..SortConfig::default()
            };
            distributed::create_fluid_input(&loader, &cfg, (gib << 30) / RECORD_BYTES as u64)
                .await
                .expect("input");
            distributed::run(&devs, master, cfg)
                .await
                .expect("sort")
                .total
                .as_secs_f64()
        })
    };
    let t2 = run(2, "f2");
    let t4 = run(4, "f4");
    let ratio = t4 / t2;
    assert!(
        (1.6..2.4).contains(&ratio),
        "expected ~2x for 2x data, got {ratio:.2}"
    );
}
