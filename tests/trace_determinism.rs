//! Trace exports must be deterministic: two identically-seeded cluster runs
//! produce byte-identical Chrome trace logs.

use bench::json::validate;
use rstore::{AllocOptions, Cluster, ClusterConfig, RStoreClient};

fn boot(servers: usize, clients: usize) -> Cluster {
    Cluster::boot(ClusterConfig {
        clients,
        ..ClusterConfig::with_servers(servers)
    })
    .expect("boot")
}

/// One traced lifecycle: alloc, cross-client map, writes, reads, free.
fn traced_run() -> String {
    let cluster = boot(3, 2);
    let sim = cluster.sim.clone();
    let tracer = sim.tracer();
    tracer.enable(1 << 15);
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let a = RStoreClient::connect(&devs[0], master).await.unwrap();
        let b = RStoreClient::connect(&devs[1], master).await.unwrap();
        let region = a
            .alloc(
                "det",
                1 << 20,
                AllocOptions {
                    stripe_size: 64 * 1024,
                    ..AllocOptions::default()
                },
            )
            .await
            .unwrap();
        region.write(0, &vec![7u8; 128 * 1024]).await.unwrap();
        let view = b.map("det").await.unwrap();
        assert_eq!(view.read(0, 16).await.unwrap(), vec![7u8; 16]);
        view.write(512 * 1024, b"second client").await.unwrap();
        region.read(512 * 1024, 13).await.unwrap();
        a.free("det").await.unwrap();
    });
    tracer.export_chrome_trace()
}

#[test]
fn seeded_runs_trace_identically() {
    let first = traced_run();
    let second = traced_run();
    assert_eq!(first, second, "traces must be bit-for-bit reproducible");
}

#[test]
fn trace_export_is_valid_chrome_json() {
    let trace = traced_run();
    validate(&trace).expect("export must be well-formed JSON");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"displayTimeUnit\": \"ns\""));
    // Spans from every instrumented layer are present.
    for name in [
        "fabric.tx",
        "fabric.rx",
        "rdma.wr.read",
        "rdma.wr.write",
        "rstore.ctrl.alloc",
        "rstore.ctrl.lookup",
        "rstore.ctrl.free",
        "rstore.read",
        "rstore.write",
    ] {
        assert!(trace.contains(name), "trace must contain {name} events");
    }
}

/// A trace ring smaller than the workload must overflow loudly: the evicted
/// count surfaces as the `trace.evicted` metrics counter when published, so
/// a truncated export is never mistaken for a complete one.
#[test]
fn trace_ring_overflow_is_surfaced_in_metrics() {
    let cluster = boot(3, 1);
    let sim = cluster.sim.clone();
    let metrics = cluster.fabric.metrics().clone();
    let tracer = sim.tracer();
    tracer.enable(8); // far fewer slots than a lifecycle emits
    let devs = cluster.client_devs.clone();
    let master = cluster.master_node();
    sim.block_on(async move {
        let c = RStoreClient::connect(&devs[0], master).await.unwrap();
        let r = c
            .alloc("ov", 1 << 20, AllocOptions::default())
            .await
            .unwrap();
        r.write(0, &vec![3u8; 256 * 1024]).await.unwrap();
        r.read(0, 256 * 1024).await.unwrap();
        c.free("ov").await.unwrap();
    });
    tracer.publish_evicted(&metrics);
    assert!(
        metrics.counter("trace.evicted") > 0,
        "an overflowed ring must be visible in the metrics namespace"
    );
    // Publishing is delta-tracked: a second publish with no new evictions
    // must not double-count.
    let count = metrics.counter("trace.evicted");
    tracer.publish_evicted(&metrics);
    assert_eq!(metrics.counter("trace.evicted"), count);
}

/// The elasticity experiment (E15: join, drain, live migration) must be
/// deterministic end to end: two full runs produce byte-identical exports —
/// sampled windows, per-op ledgers, drain accounting and all.
#[test]
fn e15_elasticity_export_is_byte_identical_across_runs() {
    let a = bench::report::experiment_json("e15").render();
    let b = bench::report::experiment_json("e15").render();
    assert_eq!(a, b, "E15 export must be bit-for-bit reproducible");
    validate(&a).expect("E15 export must be well-formed JSON");
}

/// Same for the raw-speed experiment (E16: scatter-gather, inline writes):
/// its doorbell/posting counts are design invariants, so the export must
/// not wander between runs.
#[test]
fn e16_rawspeed_export_is_byte_identical_across_runs() {
    let a = bench::report::experiment_json("e16").render();
    let b = bench::report::experiment_json("e16").render();
    assert_eq!(a, b, "E16 export must be bit-for-bit reproducible");
    validate(&a).expect("E16 export must be well-formed JSON");
}

#[test]
fn metrics_are_deterministic_across_runs() {
    let run = || {
        let cluster = boot(3, 1);
        let sim = cluster.sim.clone();
        let metrics = cluster.fabric.metrics().clone();
        let devs = cluster.client_devs.clone();
        let master = cluster.master_node();
        sim.block_on(async move {
            let c = RStoreClient::connect(&devs[0], master).await.unwrap();
            let r = c
                .alloc("m", 1 << 20, AllocOptions::default())
                .await
                .unwrap();
            r.write(0, &vec![1u8; 64 * 1024]).await.unwrap();
            r.read(0, 64 * 1024).await.unwrap();
        });
        let mut dump: Vec<(String, u64)> = metrics
            .counter_names()
            .into_iter()
            .map(|n| {
                let v = metrics.counter(&n);
                (n, v)
            })
            .collect();
        dump.sort();
        dump
    };
    assert_eq!(run(), run());
}
