//! Disabled tracing must be free: recording through a disabled tracer
//! performs no heap allocation. This is the only test in the binary so the
//! counting global allocator sees no concurrent test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_does_not_allocate() {
    let sim = sim::Sim::new();
    let tracer = sim.tracer();
    assert!(!tracer.is_enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000 {
        let span = tracer.span("bench", "noop", i);
        span.end();
        let span2 = tracer.span_arg("bench", "noop2", i, 42);
        drop(span2);
        tracer.instant("bench", "tick", i, i);
        tracer.complete_at("bench", "past", i, sim::SimTime::ZERO, 0);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled tracer must not touch the heap");
}
