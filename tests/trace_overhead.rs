//! Disabled observability must be free: recording through a disabled
//! tracer or charging a disabled op ledger performs no heap allocation.
//! This is the only test in the binary so the counting global allocator
//! sees no concurrent test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_does_not_allocate() {
    let sim = sim::Sim::new();
    let tracer = sim.tracer();
    assert!(!tracer.is_enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000 {
        let span = tracer.span("bench", "noop", i);
        span.end();
        let span2 = tracer.span_arg("bench", "noop2", i, 42);
        drop(span2);
        tracer.instant("bench", "tick", i, i);
        tracer.complete_at("bench", "past", i, sim::SimTime::ZERO, 0);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled tracer must not touch the heap");

    // The per-op cost ledger follows the same discipline: a disabled ledger
    // (every op of a client with `ClientConfig::ledger` off) must charge,
    // clone, absorb, and finish without touching the heap. An enabled
    // ledger is allowed to allocate — but only when it is created and when
    // its costs fold into the metrics registry, never per charge.
    let disabled = sim::OpLedger::disabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        disabled.rtt();
        disabled.doorbell();
        disabled.wire(4096 + i);
        disabled.retry();
        disabled.failover();
        disabled.verify_failure();
        disabled.layer_ns(sim::Layer::Wire, i);
        disabled.set_units(i + 1);
        let clone = disabled.clone();
        clone.absorb(&disabled);
        clone.finish(sim::SimTime::ZERO);
    }
    disabled.finish(sim::SimTime::ZERO);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled ledger must not touch the heap");

    let metrics = sim::Metrics::new();
    let enabled = sim::OpLedger::start(&metrics, "get", sim::SimTime::ZERO);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        enabled.rtt();
        enabled.doorbell();
        enabled.wire(4096 + i);
        enabled.layer_ns(sim::Layer::Wire, i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "enabled ledger charges must stay allocation-free (only start/finish may allocate)"
    );
    enabled.finish(sim::SimTime::ZERO);
    assert!(
        metrics.counter("ops.get.count") == 1,
        "enabled ledger must fold into metrics on finish"
    );

    // Causal op forensics follow the same discipline. A disabled trace
    // (forensics registry off — the default) must record for free: begin,
    // end, mark, retroactive spans, clone and finish all without touching
    // the heap.
    let trace = sim::OpTrace::disabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        let span = trace.begin(sim::Phase::Wire, sim::SimTime::ZERO);
        trace.mark(sim::Phase::Doorbell, sim::SimTime::ZERO);
        trace.span_ns(sim::Phase::Post, i, 1);
        trace.end(span, sim::SimTime::from_nanos(i));
        let clone = trace.clone();
        clone.finish(sim::SimTime::from_nanos(i), None);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled op trace must not touch the heap"
    );

    // An enabled trace in steady state must record spans allocation-free
    // too: span storage cycles through the registry's pool, so once a
    // same-shaped op has finished, the next op's recording reuses its
    // capacity. Only start/finish may allocate — the ledger's rule.
    let sim = sim::Sim::new();
    let forensics = sim.forensics();
    forensics.enable(sim::ForensicsConfig {
        window_ns: 1 << 30,
        k_per_kind: 0, // no exemplars retained: every finish recycles
        ring: 8,
    });
    const SPANS: u64 = 32;
    for _ in 0..2 {
        let warm = forensics.start("get", sim::SimTime::ZERO);
        for i in 0..SPANS {
            let s = warm.begin(sim::Phase::Wire, sim::SimTime::from_nanos(i));
            warm.span_ns(sim::Phase::Post, i, 1);
            warm.end(s, sim::SimTime::from_nanos(i + 1));
        }
        warm.finish(sim::SimTime::from_nanos(100), None);
    }
    let steady = forensics.start("get", sim::SimTime::ZERO);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..SPANS {
        let s = steady.begin(sim::Phase::Retry, sim::SimTime::from_nanos(i));
        steady.span_ns(sim::Phase::Wire, i, 1);
        steady.end(s, sim::SimTime::from_nanos(i + 1));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "enabled op-trace recording must stay allocation-free in steady state"
    );
    steady.finish(sim::SimTime::from_nanos(100), None);
    assert_eq!(forensics.finished(), 3);
}
