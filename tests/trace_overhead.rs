//! Disabled observability must be free: recording through a disabled
//! tracer or charging a disabled op ledger performs no heap allocation.
//! This is the only test in the binary so the counting global allocator
//! sees no concurrent test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_does_not_allocate() {
    let sim = sim::Sim::new();
    let tracer = sim.tracer();
    assert!(!tracer.is_enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000 {
        let span = tracer.span("bench", "noop", i);
        span.end();
        let span2 = tracer.span_arg("bench", "noop2", i, 42);
        drop(span2);
        tracer.instant("bench", "tick", i, i);
        tracer.complete_at("bench", "past", i, sim::SimTime::ZERO, 0);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled tracer must not touch the heap");

    // The per-op cost ledger follows the same discipline: a disabled ledger
    // (every op of a client with `ClientConfig::ledger` off) must charge,
    // clone, absorb, and finish without touching the heap. An enabled
    // ledger is allowed to allocate — but only when it is created and when
    // its costs fold into the metrics registry, never per charge.
    let disabled = sim::OpLedger::disabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        disabled.rtt();
        disabled.doorbell();
        disabled.wire(4096 + i);
        disabled.retry();
        disabled.failover();
        disabled.verify_failure();
        disabled.layer_ns(sim::Layer::Wire, i);
        disabled.set_units(i + 1);
        let clone = disabled.clone();
        clone.absorb(&disabled);
        clone.finish(sim::SimTime::ZERO);
    }
    disabled.finish(sim::SimTime::ZERO);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled ledger must not touch the heap");

    let metrics = sim::Metrics::new();
    let enabled = sim::OpLedger::start(&metrics, "get", sim::SimTime::ZERO);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        enabled.rtt();
        enabled.doorbell();
        enabled.wire(4096 + i);
        enabled.layer_ns(sim::Layer::Wire, i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "enabled ledger charges must stay allocation-free (only start/finish may allocate)"
    );
    enabled.finish(sim::SimTime::ZERO);
    assert!(
        metrics.counter("ops.get.count") == 1,
        "enabled ledger must fold into metrics on finish"
    );
}
